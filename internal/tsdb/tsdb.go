// Package tsdb implements an in-memory time-series database for operational
// telemetry: append-only labeled series with range and instant queries,
// downsampling, aggregation, and retention.
//
// It is the storage substrate behind the Monitor phase and the raw-data part
// of the Knowledge component. The query surface is intentionally close to
// what a production MODA stack (DCDB, Prometheus, Examon) exposes, so loop
// components written against it would port to a real deployment by swapping
// this package behind the same calls.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"autoloop/internal/telemetry"
)

// memSeries stores one (name, labels) identity's samples in time order.
// Retention drops samples by advancing head; the dead prefix is compacted
// only once it outgrows the live part, so expiry is O(1) amortized instead
// of copying the whole window on every append.
type memSeries struct {
	name    string
	labels  telemetry.Labels
	samples []telemetry.Sample
	head    int // index of the first live sample
}

// live returns the retained samples.
func (s *memSeries) live() []telemetry.Sample { return s.samples[s.head:] }

// DB is an in-memory time-series database. It is safe for concurrent use;
// under the simulator all access is single-threaded, but cmd/modad serves
// network queries from multiple goroutines.
type DB struct {
	mu sync.RWMutex
	// byName maps metric name -> label key -> series.
	byName map[string]map[string]*memSeries

	retention time.Duration // 0 means keep everything
	appended  uint64
}

// New returns an empty database that retains samples for the given duration;
// retention <= 0 keeps all samples forever.
func New(retention time.Duration) *DB {
	return &DB{byName: make(map[string]map[string]*memSeries), retention: retention}
}

// Append inserts a point. Out-of-order points (earlier than the series tail)
// are rejected with an error; equal timestamps overwrite the tail value so
// that idempotent re-collection is harmless.
func (db *DB) Append(p telemetry.Point) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.appendLocked(p)
}

// appendLocked is Append under an already-held write lock, so batch ingestion
// pays for one lock round-trip per batch rather than per point.
func (db *DB) appendLocked(p telemetry.Point) error {
	if p.Name == "" {
		return fmt.Errorf("tsdb: append with empty metric name")
	}
	if math.IsNaN(p.Value) {
		return fmt.Errorf("tsdb: append NaN for %s%s", p.Name, p.Labels)
	}
	families := db.byName[p.Name]
	if families == nil {
		families = make(map[string]*memSeries)
		db.byName[p.Name] = families
	}
	key := p.Labels.Key()
	s := families[key]
	if s == nil {
		s = &memSeries{name: p.Name, labels: p.Labels.Clone()}
		families[key] = s
	}
	if n := len(s.samples); n > 0 {
		last := s.samples[n-1].Time
		if p.Time < last {
			return fmt.Errorf("tsdb: out-of-order append for %s%s: %v < %v", p.Name, p.Labels, p.Time, last)
		}
		if p.Time == last {
			s.samples[n-1].Value = p.Value
			return nil
		}
	}
	s.samples = append(s.samples, telemetry.Sample{Time: p.Time, Value: p.Value})
	db.appended++
	if db.retention > 0 {
		cutoff := p.Time - db.retention
		s.truncateBefore(cutoff)
	}
	return nil
}

// AppendBatch inserts every point in one pass under a single lock
// acquisition, returning the first error encountered (but attempting all
// points regardless). It implements telemetry.Sink.
func (db *DB) AppendBatch(pts []telemetry.Point) error {
	if len(pts) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, p := range pts {
		if err := db.appendLocked(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// truncateBefore drops samples strictly older than cutoff.
func (s *memSeries) truncateBefore(cutoff time.Duration) {
	live := s.live()
	i := sort.Search(len(live), func(i int) bool { return live[i].Time >= cutoff })
	if i == 0 {
		return
	}
	s.head += i
	if s.head > len(s.samples)-s.head {
		n := copy(s.samples, s.samples[s.head:])
		s.samples = s.samples[:n]
		s.head = 0
	}
}

// Appended reports the total number of samples stored since creation
// (overwrites of an existing tail timestamp do not count).
func (db *DB) Appended() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.appended
}

// NumSeries reports the current series cardinality.
func (db *DB) NumSeries() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, fams := range db.byName {
		n += len(fams)
	}
	return n
}

// MetricNames returns all metric names in sorted order.
func (db *DB) MetricNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.byName))
	for n := range db.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query returns, for the metric name, every series whose labels match the
// matcher, restricted to samples in [from, to]. Series are returned sorted by
// label key so that results are deterministic. The returned series share no
// storage with the database.
func (db *DB) Query(name string, matcher telemetry.Labels, from, to time.Duration) []telemetry.Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fams := db.byName[name]
	if fams == nil {
		return nil
	}
	keys := make([]string, 0, len(fams))
	for k, s := range fams {
		if s.labels.Matches(matcher) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []telemetry.Series
	for _, k := range keys {
		s := fams[k]
		live := s.live()
		lo := sort.Search(len(live), func(i int) bool { return live[i].Time >= from })
		hi := sort.Search(len(live), func(i int) bool { return live[i].Time > to })
		if lo >= hi {
			continue
		}
		cp := make([]telemetry.Sample, hi-lo)
		copy(cp, live[lo:hi])
		out = append(out, telemetry.Series{Name: name, Labels: s.labels.Clone(), Samples: cp})
	}
	return out
}

// QueryOne is Query for callers expecting exactly one matching series; it
// reports false when zero or multiple series match.
func (db *DB) QueryOne(name string, matcher telemetry.Labels, from, to time.Duration) (telemetry.Series, bool) {
	ss := db.Query(name, matcher, from, to)
	if len(ss) != 1 {
		return telemetry.Series{}, false
	}
	return ss[0], true
}

// Latest returns the most recent sample of every matching series.
func (db *DB) Latest(name string, matcher telemetry.Labels) []telemetry.Point {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fams := db.byName[name]
	if fams == nil {
		return nil
	}
	keys := make([]string, 0, len(fams))
	for k, s := range fams {
		if s.labels.Matches(matcher) && len(s.live()) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]telemetry.Point, 0, len(keys))
	for _, k := range keys {
		s := fams[k]
		live := s.live()
		last := live[len(live)-1]
		out = append(out, telemetry.Point{Name: name, Labels: s.labels.Clone(), Time: last.Time, Value: last.Value})
	}
	return out
}

// LatestValue returns the newest value of the single series matching
// (name, matcher), or ok=false when none matches.
func (db *DB) LatestValue(name string, matcher telemetry.Labels) (float64, bool) {
	pts := db.Latest(name, matcher)
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].Value, true
}
