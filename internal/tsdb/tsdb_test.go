package tsdb

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"autoloop/internal/telemetry"
)

func pt(name string, labels telemetry.Labels, t time.Duration, v float64) telemetry.Point {
	return telemetry.Point{Name: name, Labels: labels, Time: t, Value: v}
}

func TestAppendAndQuery(t *testing.T) {
	db := New(0)
	l := telemetry.Labels{"node": "n1"}
	for i := 0; i < 10; i++ {
		if err := db.Append(pt("cpu", l, time.Duration(i)*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ss := db.Query("cpu", nil, 2*time.Second, 5*time.Second)
	if len(ss) != 1 {
		t.Fatalf("got %d series, want 1", len(ss))
	}
	if got := len(ss[0].Samples); got != 4 {
		t.Errorf("got %d samples, want 4 (t=2..5)", got)
	}
	if ss[0].Samples[0].Value != 2 || ss[0].Samples[3].Value != 5 {
		t.Errorf("range boundaries wrong: %v", ss[0].Samples)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	db := New(0)
	l := telemetry.Labels{"n": "1"}
	if err := db.Append(pt("m", l, 10*time.Second, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(pt("m", l, 5*time.Second, 2)); err == nil {
		t.Error("expected out-of-order error")
	}
}

func TestAppendEqualTimestampOverwrites(t *testing.T) {
	db := New(0)
	l := telemetry.Labels{"n": "1"}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Append(pt("m", l, time.Second, 1)))
	must(db.Append(pt("m", l, time.Second, 9)))
	v, ok := db.LatestValue("m", l)
	if !ok || v != 9 {
		t.Errorf("LatestValue = %v, %v; want 9", v, ok)
	}
	if db.Appended() != 1 {
		t.Errorf("Appended = %d, want 1 (overwrite should not count)", db.Appended())
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	db := New(0)
	if err := db.Append(pt("", nil, 0, 1)); err == nil {
		t.Error("expected error for empty name")
	}
	if err := db.Append(pt("m", nil, 0, math.NaN())); err == nil {
		t.Error("expected error for NaN")
	}
}

func TestQueryMatcherSelectsSeries(t *testing.T) {
	db := New(0)
	for _, node := range []string{"n1", "n2", "n3"} {
		_ = db.Append(pt("cpu", telemetry.Labels{"node": node, "rack": "r1"}, time.Second, 1))
	}
	_ = db.Append(pt("cpu", telemetry.Labels{"node": "n4", "rack": "r2"}, time.Second, 1))
	if got := len(db.Query("cpu", telemetry.Labels{"rack": "r1"}, 0, time.Minute)); got != 3 {
		t.Errorf("rack=r1 matched %d series, want 3", got)
	}
	if got := len(db.Query("cpu", nil, 0, time.Minute)); got != 4 {
		t.Errorf("nil matcher matched %d series, want 4", got)
	}
	if got := len(db.Query("mem", nil, 0, time.Minute)); got != 0 {
		t.Errorf("unknown metric matched %d series, want 0", got)
	}
}

func TestQueryResultsAreCopies(t *testing.T) {
	db := New(0)
	l := telemetry.Labels{"n": "1"}
	_ = db.Append(pt("m", l, time.Second, 5))
	ss := db.Query("m", nil, 0, time.Minute)
	ss[0].Samples[0].Value = 99
	v, _ := db.LatestValue("m", l)
	if v != 5 {
		t.Error("query result mutation leaked into the database")
	}
}

func TestRetention(t *testing.T) {
	db := New(10 * time.Second)
	l := telemetry.Labels{"n": "1"}
	for i := 0; i <= 30; i++ {
		_ = db.Append(pt("m", l, time.Duration(i)*time.Second, float64(i)))
	}
	ss := db.Query("m", nil, 0, time.Hour)
	if len(ss) != 1 {
		t.Fatal("series missing")
	}
	first := ss[0].Samples[0].Time
	if first < 20*time.Second {
		t.Errorf("retention kept sample at %v, want >= 20s", first)
	}
}

func TestLatestAndQueryOne(t *testing.T) {
	db := New(0)
	_ = db.Append(pt("m", telemetry.Labels{"n": "1"}, time.Second, 1))
	_ = db.Append(pt("m", telemetry.Labels{"n": "1"}, 2*time.Second, 7))
	_ = db.Append(pt("m", telemetry.Labels{"n": "2"}, time.Second, 3))
	latest := db.Latest("m", nil)
	if len(latest) != 2 {
		t.Fatalf("Latest returned %d, want 2", len(latest))
	}
	if latest[0].Value != 7 {
		t.Errorf("latest n=1 = %v, want 7", latest[0].Value)
	}
	if _, ok := db.QueryOne("m", nil, 0, time.Hour); ok {
		t.Error("QueryOne should fail with 2 matches")
	}
	s, ok := db.QueryOne("m", telemetry.Labels{"n": "2"}, 0, time.Hour)
	if !ok || s.Samples[0].Value != 3 {
		t.Errorf("QueryOne = %v, %v", s, ok)
	}
}

func TestMetricNamesSorted(t *testing.T) {
	db := New(0)
	_ = db.Append(pt("z", nil, 0, 1))
	_ = db.Append(pt("a", nil, 0, 1))
	names := db.MetricNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("MetricNames = %v", names)
	}
	if db.NumSeries() != 2 {
		t.Errorf("NumSeries = %d", db.NumSeries())
	}
}

func TestDownsample(t *testing.T) {
	s := telemetry.Series{Name: "m"}
	for i := 0; i < 10; i++ {
		s.Samples = append(s.Samples, telemetry.Sample{Time: time.Duration(i) * time.Second, Value: float64(i)})
	}
	d := Downsample(s, 5*time.Second, AggMean)
	if len(d.Samples) != 2 {
		t.Fatalf("downsampled to %d buckets, want 2", len(d.Samples))
	}
	if d.Samples[0].Value != 2 { // mean(0..4)
		t.Errorf("bucket 0 = %v, want 2", d.Samples[0].Value)
	}
	if d.Samples[1].Value != 7 { // mean(5..9)
		t.Errorf("bucket 1 = %v, want 7", d.Samples[1].Value)
	}
	if d.Samples[0].Time != 5*time.Second {
		t.Errorf("bucket end = %v, want 5s", d.Samples[0].Time)
	}
}

func TestAggregations(t *testing.T) {
	vals := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		agg  Agg
		want float64
	}{
		{AggMean, 3}, {AggSum, 15}, {AggMin, 1}, {AggMax, 5},
		{AggCount, 5}, {AggLast, 5}, {AggP50, 3},
	}
	for _, c := range cases {
		if got := c.agg.apply(append([]float64(nil), vals...)); got != c.want {
			t.Errorf("%v = %v, want %v", c.agg, got, c.want)
		}
	}
	if got := AggStddev.apply([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ~2.138", got)
	}
	if !math.IsNaN(AggMean.apply(nil)) {
		t.Error("empty aggregation should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vals, 0.5); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(vals, 1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// input must not be mutated
	in := []float64{3, 1, 2}
	Percentile(in, 0.5)
	if in[0] != 3 {
		t.Error("Percentile mutated input")
	}
}

// Property: percentile is monotone in q and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo, hi := Percentile(vals, 0), Percentile(vals, 1)
		p1, p2 := Percentile(vals, q1), Percentile(vals, q2)
		return p1 <= p2 && p1 >= lo && p2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	s := telemetry.Series{Samples: []telemetry.Sample{
		{Time: 0, Value: 0},
		{Time: 10 * time.Second, Value: 20},
	}}
	if got := Rate(s); got != 2 {
		t.Errorf("Rate = %v, want 2", got)
	}
	if got := Rate(telemetry.Series{}); got != 0 {
		t.Errorf("empty Rate = %v, want 0", got)
	}
	same := telemetry.Series{Samples: []telemetry.Sample{{Time: 5, Value: 1}, {Time: 5, Value: 2}}}
	if got := Rate(same); got != 0 {
		t.Errorf("zero-dt Rate = %v, want 0", got)
	}
}

func TestReduceAcross(t *testing.T) {
	series := []telemetry.Series{
		{Samples: []telemetry.Sample{{Time: 1, Value: 10}}},
		{Samples: []telemetry.Sample{{Time: 1, Value: 20}}},
		{}, // empty series contributes nothing
	}
	if got := ReduceAcross(series, AggMax); got != 20 {
		t.Errorf("ReduceAcross max = %v, want 20", got)
	}
	if got := ReduceAcross(series, AggCount); got != 2 {
		t.Errorf("ReduceAcross count = %v, want 2", got)
	}
}

func TestAggString(t *testing.T) {
	if AggP99.String() != "p99" || AggMean.String() != "mean" {
		t.Error("Agg.String")
	}
	if Agg(99).String() != "unknown" {
		t.Error("unknown Agg.String")
	}
}
