package knowledge

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"autoloop/internal/analytics"
)

func TestTypicalRuntimeMedian(t *testing.T) {
	b := NewBase()
	for _, d := range []time.Duration{time.Hour, 2 * time.Hour, 10 * time.Hour} {
		b.AddRun(RunRecord{App: "lbm", Runtime: d, Completed: true})
	}
	b.AddRun(RunRecord{App: "lbm", Runtime: 100 * time.Hour, Completed: false}) // killed: ignored
	b.AddRun(RunRecord{App: "other", Runtime: time.Minute, Completed: true})
	got, ok := b.TypicalRuntime("lbm")
	if !ok || got != 2*time.Hour {
		t.Errorf("TypicalRuntime = %v, %v; want 2h", got, ok)
	}
	if _, ok := b.TypicalRuntime("missing"); ok {
		t.Error("missing app should not report")
	}
}

func TestRunsFor(t *testing.T) {
	b := NewBase()
	b.AddRun(RunRecord{App: "a"})
	b.AddRun(RunRecord{App: "b"})
	b.AddRun(RunRecord{App: "a"})
	if got := len(b.RunsFor("a")); got != 2 {
		t.Errorf("RunsFor(a) = %d", got)
	}
	if got := len(b.Runs()); got != 3 {
		t.Errorf("Runs = %d", got)
	}
}

func TestSimilarRuns(t *testing.T) {
	b := NewBase()
	b.AddRun(RunRecord{App: "x", Completed: true, Signature: analytics.Signature{"iter_ms": 100, "util": 0.9}})
	b.AddRun(RunRecord{App: "y", Completed: true, Signature: analytics.Signature{"iter_ms": 500, "util": 0.3}})
	b.AddRun(RunRecord{App: "z", Completed: false, Signature: analytics.Signature{"iter_ms": 100, "util": 0.9}}) // incomplete: excluded
	b.AddRun(RunRecord{App: "w", Completed: true})                                                               // no signature: excluded
	got := b.SimilarRuns(analytics.Signature{"iter_ms": 102, "util": 0.89}, 1)
	if len(got) != 1 || got[0].App != "x" {
		t.Errorf("SimilarRuns = %+v", got)
	}
}

func TestPlanRecordingAndAssess(t *testing.T) {
	b := NewBase()
	i1 := b.RecordPlan(PlanRecord{Loop: "sched", Action: "extend", Predicted: 100})
	i2 := b.RecordPlan(PlanRecord{Loop: "sched", Action: "extend", Predicted: 80})
	b.RecordPlan(PlanRecord{Loop: "other", Action: "x", Predicted: 1})
	if err := b.ResolvePlan(i1, 90, true); err != nil { // over by 10
		t.Fatal(err)
	}
	if err := b.ResolvePlan(i2, 100, false); err != nil { // under by 20
		t.Fatal(err)
	}
	eff := b.Assess("sched")
	if eff.Plans != 2 || eff.Resolved != 2 || eff.Honored != 1 {
		t.Errorf("eff = %+v", eff)
	}
	if eff.OverCount != 1 || eff.UnderCount != 1 {
		t.Errorf("over/under = %d/%d", eff.OverCount, eff.UnderCount)
	}
	if math.Abs(eff.MeanAbsErr-15) > 1e-9 {
		t.Errorf("MeanAbsErr = %v, want 15", eff.MeanAbsErr)
	}
	all := b.Assess("")
	if all.Plans != 3 {
		t.Errorf("all plans = %d", all.Plans)
	}
	if err := b.ResolvePlan(99, 0, false); err == nil {
		t.Error("out-of-range resolve should error")
	}
}

func TestCorrectionLearning(t *testing.T) {
	b := NewBase()
	if got := b.Correction("app"); got != 1.0 {
		t.Errorf("default correction = %v", got)
	}
	// Forecasts consistently 20% short: actual/predicted = 1.25. With 30
	// resolutions, shrinkage weight is 30/32 — close to full strength.
	for i := 0; i < 30; i++ {
		b.ResolveCorrection("app", 100, 125)
	}
	if got := b.Correction("app"); math.Abs(got-1.25) > 0.03 {
		t.Errorf("correction = %v, want ~1.25", got)
	}
}

func TestCorrectionShrinksLowEvidence(t *testing.T) {
	b := NewBase()
	b.ResolveCorrection("app", 100, 200) // one sample says 2.0
	got := b.Correction("app")
	// n=1 -> weight 1/3 -> 1 + (2-1)/3 = 1.333...
	if math.Abs(got-4.0/3) > 0.01 {
		t.Errorf("single-sample correction = %v, want ~1.33 (shrunk)", got)
	}
	for i := 0; i < 20; i++ {
		b.ResolveCorrection("app", 100, 200)
	}
	if got := b.Correction("app"); got < 1.8 {
		t.Errorf("high-evidence correction = %v, want near 2.0", got)
	}
}

func TestCorrectionClampsOutliers(t *testing.T) {
	b := NewBase()
	b.ResolveCorrection("app", 1, 1000) // pathological ratio 1000 -> clamp 3
	if got := b.Correction("app"); got > 3.0001 {
		t.Errorf("correction = %v, want clamped <= 3", got)
	}
	b2 := NewBase()
	b2.ResolveCorrection("app", 1000, 1)
	if got := b2.Correction("app"); got < 1.0/3-0.001 {
		t.Errorf("correction = %v, want clamped >= 1/3", got)
	}
	// Invalid inputs ignored.
	b3 := NewBase()
	b3.ResolveCorrection("app", 0, 5)
	b3.ResolveCorrection("app", 5, -1)
	if got := b3.Correction("app"); got != 1.0 {
		t.Errorf("correction after invalid updates = %v", got)
	}
}

func TestFacts(t *testing.T) {
	b := NewBase()
	if _, ok := b.Fact("x"); ok {
		t.Error("missing fact should not report")
	}
	b.SetFact("x", 42)
	if v, ok := b.Fact("x"); !ok || v != 42 {
		t.Errorf("Fact = %v, %v", v, ok)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := NewBase()
	b.AddRun(RunRecord{App: "a", Runtime: time.Hour, Completed: true, Signature: analytics.Signature{"k": 1}})
	idx := b.RecordPlan(PlanRecord{Loop: "l", Action: "extend", Predicted: 10})
	_ = b.ResolvePlan(idx, 12, true)
	b.ResolveCorrection("a", 10, 12)
	b.SetFact("f", 7)

	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2 := NewBase()
	if err := b2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if len(b2.Runs()) != 1 || b2.Runs()[0].App != "a" {
		t.Error("runs lost in round trip")
	}
	if len(b2.Plans()) != 1 || !b2.Plans()[0].Resolved {
		t.Error("plans lost in round trip")
	}
	if math.Abs(b2.Correction("a")-b.Correction("a")) > 1e-12 {
		t.Error("corrections lost")
	}
	if v, ok := b2.Fact("f"); !ok || v != 7 {
		t.Error("facts lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	b := NewBase()
	if err := b.Load(strings.NewReader("{nope")); err == nil {
		t.Error("expected decode error")
	}
}

func TestLoadEmptyMapsInitialized(t *testing.T) {
	b := NewBase()
	if err := b.Load(strings.NewReader(`{"runs":null,"plans":null}`)); err != nil {
		t.Fatal(err)
	}
	b.SetFact("x", 1)              // must not panic on nil map
	b.ResolveCorrection("a", 1, 2) // must not panic on nil map
}

func TestRunsReturnsCopy(t *testing.T) {
	b := NewBase()
	b.AddRun(RunRecord{App: "a"})
	runs := b.Runs()
	runs[0].App = "mutated"
	if b.Runs()[0].App != "a" {
		t.Error("Runs leaked internal storage")
	}
}
