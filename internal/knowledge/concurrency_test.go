package knowledge

import (
	"io"
	"strconv"
	"sync"
	"testing"
	"time"

	"autoloop/internal/analytics"
)

// TestBaseConcurrentAccess hammers every Base method from many goroutines at
// once — the access pattern a fleet coordinator produces, where worker
// goroutines read the shared base during the plan phase while the serial
// execute phase (and a snapshot exporter) writes it. Run under -race this
// verifies the base's locking, including that Save's snapshot does not alias
// mutable state.
func TestBaseConcurrentAccess(t *testing.T) {
	b := NewBase()
	apps := []string{"lammps", "gromacs", "vasp"}
	var wg sync.WaitGroup
	const writers, readers, rounds = 4, 4, 200

	var planIdx sync.Map // writer -> last plan index, resolved by the same writer
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := apps[w%len(apps)]
			for i := 0; i < rounds; i++ {
				b.AddRun(RunRecord{
					App: app, User: "u" + strconv.Itoa(w), Nodes: w + 1,
					Runtime: time.Duration(i) * time.Second, Completed: i%2 == 0,
					Signature: analytics.Signature{"iter_ms": float64(i)},
				})
				idx := b.RecordPlan(PlanRecord{Loop: "loop" + strconv.Itoa(w), Action: "extend", Predicted: float64(i)})
				planIdx.Store(w, idx)
				if err := b.ResolvePlan(idx, float64(i)+0.5, i%3 == 0); err != nil {
					t.Error(err)
					return
				}
				b.ResolveCorrection(app, 100, 90+float64(i%20))
				b.SetFact(app+".cap", float64(i))
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := apps[r%len(apps)]
			for i := 0; i < rounds; i++ {
				_ = b.Runs()
				_ = b.RunsFor(app)
				_, _ = b.TypicalRuntime(app)
				_ = b.SimilarRuns(analytics.Signature{"iter_ms": float64(i)}, 3)
				_ = b.Plans()
				_ = b.Assess("")
				_ = b.Correction(app)
				_, _ = b.Fact(app + ".cap")
				if i%10 == 0 {
					if err := b.Save(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := len(b.Runs()); got != writers*rounds {
		t.Errorf("runs = %d, want %d", got, writers*rounds)
	}
	if got := len(b.Plans()); got != writers*rounds {
		t.Errorf("plans = %d, want %d", got, writers*rounds)
	}
	eff := b.Assess("")
	if eff.Resolved != writers*rounds {
		t.Errorf("resolved = %d, want %d", eff.Resolved, writers*rounds)
	}
}
