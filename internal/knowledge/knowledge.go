// Package knowledge implements the K of MAPE-K: a store of historical
// application run records with behavioral signatures, plan/outcome records
// for assessing the effectiveness of past decisions, and per-application
// correction factors learned from realized forecast errors.
//
// The paper's Scheduler case requires "representative historical application
// run times, which would need to be collected and stored along with
// appropriate metadata", plus the Assess step that "refine[s] the Knowledge
// through subsequent Monitoring". Base implements both, and its JSON
// persistence doubles as the open-dataset format promised in §III(iii).
package knowledge

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"autoloop/internal/analytics"
)

// RunRecord captures one completed (or killed) application run.
type RunRecord struct {
	App       string              `json:"app"`
	User      string              `json:"user"`
	Nodes     int                 `json:"nodes"`
	Runtime   time.Duration       `json:"runtime"`
	Walltime  time.Duration       `json:"walltime"`
	Completed bool                `json:"completed"`
	Signature analytics.Signature `json:"signature,omitempty"`
	At        time.Duration       `json:"at"`
}

// PlanRecord captures one executed plan and, once resolved, its outcome —
// the raw material for effectiveness assessment and confidence.
type PlanRecord struct {
	Loop      string        `json:"loop"`
	Action    string        `json:"action"`
	At        time.Duration `json:"at"`
	Predicted float64       `json:"predicted"`
	Actual    float64       `json:"actual"`
	Honored   bool          `json:"honored"`
	Resolved  bool          `json:"resolved"`
	Note      string        `json:"note,omitempty"`
}

// Effectiveness summarizes resolved plans of one loop: how often the managed
// system honored the action and how accurate the predictions behind it were.
type Effectiveness struct {
	Plans      int
	Honored    int
	Resolved   int
	MeanAbsErr float64 // mean |predicted-actual| over resolved plans
	MeanRelErr float64 // mean |predicted-actual|/|actual|
	OverCount  int     // predicted > actual (over-estimation)
	UnderCount int     // predicted < actual
}

// Base is the in-memory knowledge base. It is safe for concurrent use.
type Base struct {
	mu    sync.RWMutex
	runs  []RunRecord
	plans []PlanRecord

	// corr holds learned multiplicative correction factors per app, updated
	// by ResolveCorrection (e.g. "this app's forecasts run 10% short");
	// corrN counts the resolutions behind each factor so Correction can
	// shrink low-evidence factors toward 1.
	corr  map[string]float64
	corrN map[string]int
	// facts is a small typed blackboard for loop-specific knowledge.
	facts map[string]float64

	// journal, when non-nil, receives every mutation as a WAL record (see
	// journal.go); walSeq is the sequence of the last journaled or replayed
	// op, carried in snapshots so tail replay skips covered records. jerr is
	// the sticky first journal failure.
	journal Journaler
	walSeq  uint64
	jerr    error
}

// NewBase returns an empty knowledge base.
func NewBase() *Base {
	return &Base{
		corr:  make(map[string]float64),
		corrN: make(map[string]int),
		facts: make(map[string]float64),
	}
}

// AddRun records a completed run.
func (b *Base) AddRun(r RunRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.runs = append(b.runs, r)
	b.journalLocked(&walOp{Op: "run", Run: &r})
}

// Runs returns all run records (copy).
func (b *Base) Runs() []RunRecord {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]RunRecord(nil), b.runs...)
}

// RunsFor returns the run records of one application (copy).
func (b *Base) RunsFor(app string) []RunRecord {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []RunRecord
	for _, r := range b.runs {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// TypicalRuntime estimates an application's runtime from completed history:
// the median of completed runs (robust to stragglers). ok is false without
// history.
func (b *Base) TypicalRuntime(app string) (time.Duration, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var durs []time.Duration
	for _, r := range b.runs {
		if r.App == app && r.Completed {
			durs = append(durs, r.Runtime)
		}
	}
	if len(durs) == 0 {
		return 0, false
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], true
}

// SimilarRuns returns up to k completed runs most similar to the query
// signature, across all applications — the paper's "inferred from similar
// jobs with different input decks".
func (b *Base) SimilarRuns(query analytics.Signature, k int) []RunRecord {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var candidates []analytics.Signature
	var idx []int
	for i, r := range b.runs {
		if r.Completed && len(r.Signature) > 0 {
			candidates = append(candidates, r.Signature)
			idx = append(idx, i)
		}
	}
	ns := analytics.NearestNeighbors(query, candidates, k)
	out := make([]RunRecord, 0, len(ns))
	for _, n := range ns {
		out = append(out, b.runs[idx[n.Index]])
	}
	return out
}

// RecordPlan appends an executed plan and returns its index for resolution.
func (b *Base) RecordPlan(p PlanRecord) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.plans = append(b.plans, p)
	b.journalLocked(&walOp{Op: "plan", Plan: &p})
	return len(b.plans) - 1
}

// ResolvePlan fills in the realized outcome of plan idx.
func (b *Base) ResolvePlan(idx int, actual float64, honored bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.plans) {
		return fmt.Errorf("knowledge: plan index %d out of range", idx)
	}
	b.plans[idx].Actual = actual
	b.plans[idx].Honored = honored
	b.plans[idx].Resolved = true
	b.journalLocked(&walOp{Op: "resolve_plan", Idx: idx, Actual: actual, Honored: honored})
	return nil
}

// Plans returns all plan records (copy).
func (b *Base) Plans() []PlanRecord {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]PlanRecord(nil), b.plans...)
}

// Assess summarizes the effectiveness of a loop's resolved plans ("" matches
// every loop).
func (b *Base) Assess(loop string) Effectiveness {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var eff Effectiveness
	var absSum, relSum float64
	for _, p := range b.plans {
		if loop != "" && p.Loop != loop {
			continue
		}
		eff.Plans++
		if !p.Resolved {
			continue
		}
		eff.Resolved++
		if p.Honored {
			eff.Honored++
		}
		diff := p.Predicted - p.Actual
		if diff > 0 {
			eff.OverCount++
		} else if diff < 0 {
			eff.UnderCount++
		}
		abs := diff
		if abs < 0 {
			abs = -abs
		}
		absSum += abs
		denom := p.Actual
		if denom < 0 {
			denom = -denom
		}
		if denom > 1e-12 {
			relSum += abs / denom
		}
	}
	if eff.Resolved > 0 {
		eff.MeanAbsErr = absSum / float64(eff.Resolved)
		eff.MeanRelErr = relSum / float64(eff.Resolved)
	}
	return eff
}

// Correction returns the learned multiplicative correction for an app's
// forecasts (1.0 when nothing has been learned). Low-evidence factors are
// shrunk toward 1 — a single resolved run must not steer the loop hard —
// with weight n/(n+2) for n resolutions.
func (b *Base) Correction(app string) float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.corr[app]
	if !ok {
		return 1.0
	}
	n := float64(b.corrN[app])
	w := n / (n + 2)
	return 1 + (c-1)*w
}

// ResolveCorrection updates the app's correction factor toward
// actual/predicted with an exponential weight, the Assess-phase learning
// that makes the loop's next forecast better than its last.
func (b *Base) ResolveCorrection(app string, predicted, actual float64) {
	if predicted <= 0 || actual <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resolveCorrectionLocked(app, predicted, actual)
	b.journalLocked(&walOp{Op: "resolve_corr", App: app, Predicted: predicted, Actual: actual})
}

// resolveCorrectionLocked is the correction update shared by the live path
// and WAL replay. Callers hold the write lock.
func (b *Base) resolveCorrectionLocked(app string, predicted, actual float64) {
	if predicted <= 0 || actual <= 0 {
		return
	}
	ratio := actual / predicted
	// Clamp single-shot updates: one pathological run must not poison K.
	if ratio > 3 {
		ratio = 3
	}
	if ratio < 1.0/3 {
		ratio = 1.0 / 3
	}
	b.corrN[app]++
	cur, ok := b.corr[app]
	if !ok {
		b.corr[app] = ratio
		return
	}
	const alpha = 0.3
	b.corr[app] = (1-alpha)*cur + alpha*ratio
}

// SetFact stores a named scalar fact on the blackboard.
func (b *Base) SetFact(key string, v float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.facts[key] = v
	b.journalLocked(&walOp{Op: "fact", Key: key, Value: v})
}

// Fact retrieves a named scalar fact.
func (b *Base) Fact(key string) (float64, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.facts[key]
	return v, ok
}

// snapshot is the JSON persistence form.
type snapshot struct {
	Runs  []RunRecord        `json:"runs"`
	Plans []PlanRecord       `json:"plans"`
	Corr  map[string]float64 `json:"corrections"`
	CorrN map[string]int     `json:"correction_counts"`
	Facts map[string]float64 `json:"facts"`
	// WalSeq is the WAL sequence of the last journaled op this snapshot
	// reflects; ApplyWAL skips records at or below it during tail replay.
	WalSeq uint64 `json:"wal_seq,omitempty"`
}

// Save writes the knowledge base as JSON (the open-dataset export). The
// state is copied under the read lock before encoding: the encoder must not
// observe ResolvePlan rewriting a plan record or ResolveCorrection growing a
// map while another goroutine holds the base — under a concurrent fleet
// coordinator the base is shared across worker goroutines.
func (b *Base) Save(w io.Writer) error {
	b.mu.RLock()
	snap := snapshot{
		Runs:   append([]RunRecord(nil), b.runs...),
		Plans:  append([]PlanRecord(nil), b.plans...),
		Corr:   make(map[string]float64, len(b.corr)),
		CorrN:  make(map[string]int, len(b.corrN)),
		Facts:  make(map[string]float64, len(b.facts)),
		WalSeq: b.walSeq,
	}
	for i, r := range snap.Runs {
		if r.Signature != nil {
			sig := make(analytics.Signature, len(r.Signature))
			for k, v := range r.Signature {
				sig[k] = v
			}
			snap.Runs[i].Signature = sig
		}
	}
	for k, v := range b.corr {
		snap.Corr[k] = v
	}
	for k, v := range b.corrN {
		snap.CorrN[k] = v
	}
	for k, v := range b.facts {
		snap.Facts[k] = v
	}
	b.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the knowledge base content from JSON produced by Save.
func (b *Base) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("knowledge: load: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.runs = snap.Runs
	b.plans = snap.Plans
	b.corr = snap.Corr
	if b.corr == nil {
		b.corr = make(map[string]float64)
	}
	b.corrN = snap.CorrN
	if b.corrN == nil {
		b.corrN = make(map[string]int)
	}
	b.facts = snap.Facts
	if b.facts == nil {
		b.facts = make(map[string]float64)
	}
	b.walSeq = snap.WalSeq
	return nil
}
