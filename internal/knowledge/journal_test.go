package knowledge

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"autoloop/internal/wal"
)

func dumpBase(b *Base) interface{} {
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

func mutate(b *Base) {
	b.AddRun(RunRecord{App: "lammps", User: "u1", Nodes: 8, Runtime: time.Hour, Completed: true, At: time.Minute})
	b.AddRun(RunRecord{App: "gromacs", User: "u2", Nodes: 4, Runtime: 30 * time.Minute, Completed: false, At: 2 * time.Minute})
	idx := b.RecordPlan(PlanRecord{Loop: "sched", Action: "boost", At: 3 * time.Minute, Predicted: 10})
	b.RecordPlan(PlanRecord{Loop: "power", Action: "cap", At: 4 * time.Minute, Predicted: 200})
	b.ResolvePlan(idx, 11.5, true)
	b.ResolveCorrection("lammps", 10, 12)
	b.ResolveCorrection("lammps", 10, 9)
	b.SetFact("cluster.power.budget", 42000)
	// Non-mutating calls must not be journaled.
	b.ResolveCorrection("lammps", 0, 9)
	b.ResolvePlan(99, 1, true)
}

// replayInto replays every knowledge record of the WAL into base.
func replayInto(t *testing.T, w *wal.WAL, b *Base, from uint64) {
	t.Helper()
	r, err := w.Replay(from)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Kind != wal.KindKnowledgeOp {
			continue
		}
		if err := b.ApplyWAL(rec.Seq, rec.Payload); err != nil {
			t.Fatalf("ApplyWAL seq %d: %v", rec.Seq, err)
		}
	}
}

// TestKnowledgeJournalReplay journals the full mutation vocabulary and
// replays it into a fresh base, requiring an identical export.
func TestKnowledgeJournalReplay(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	live := NewBase()
	live.Journal(w)
	mutate(live)
	if err := live.JournalErr(); err != nil {
		t.Fatalf("JournalErr: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	rec := NewBase()
	replayInto(t, w, rec, 1)
	if a, b := dumpBase(live), dumpBase(rec); a != b {
		t.Fatalf("replayed base diverges:\n live: %s\n rec:  %s", a, b)
	}
	if c := rec.Correction("lammps"); c != live.Correction("lammps") {
		t.Fatalf("correction diverges: %v vs %v", c, live.Correction("lammps"))
	}
}

// TestKnowledgeSnapshotTailReplay loads a mid-stream snapshot and replays
// the whole log over it: records the snapshot covers must be skipped via the
// carried WAL sequence, not double-applied.
func TestKnowledgeSnapshotTailReplay(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	live := NewBase()
	live.Journal(w)
	mutate(live)
	var snap bytes.Buffer
	if err := live.Save(&snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Mutations after the snapshot form the tail.
	live.AddRun(RunRecord{App: "lammps", User: "u3", Nodes: 16, Runtime: 2 * time.Hour, Completed: true, At: time.Hour})
	live.SetFact("cluster.power.budget", 40000)
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	rec := NewBase()
	if err := rec.Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	replayInto(t, w, rec, 1) // full log: overlap must be skipped exactly
	if a, b := dumpBase(live), dumpBase(rec); a != b {
		t.Fatalf("snapshot+tail replay diverges:\n live: %s\n rec:  %s", a, b)
	}
	if got, want := len(rec.Runs()), len(live.Runs()); got != want {
		t.Fatalf("run count %d, want %d (double-applied overlap?)", got, want)
	}
	if !reflect.DeepEqual(rec.Plans(), live.Plans()) {
		t.Fatal("plans diverge after snapshot+tail replay")
	}
}
