package knowledge

import (
	"encoding/json"
	"fmt"

	"autoloop/internal/wal"
)

// Write-ahead journaling. Every mutating operation on the Base — AddRun,
// RecordPlan, ResolvePlan, ResolveCorrection, SetFact — is serialized as one
// JSON walOp and emitted as a wal.KindKnowledgeOp record while the base's
// write lock is held, so the log order equals the apply order (RecordPlan's
// returned index, for instance, is implied by that order). Recovery loads
// the newest snapshot (Save/Load) and replays the WAL tail through ApplyWAL;
// the base tracks the WAL sequence of its last journaled op and snapshots
// carry it, so records the snapshot already reflects are skipped exactly —
// re-applying an AddRun is not idempotent, a duplicate run record would
// shift every median and similarity query.

// Journaler is the sink mutations are logged to; *wal.WAL satisfies it.
type Journaler interface {
	Append(kind uint8, payload []byte) (uint64, error)
}

// walOp is the JSON journal form of one mutation. Op selects the variant;
// only that variant's fields are populated.
type walOp struct {
	Op        string      `json:"op"` // "run" | "plan" | "resolve_plan" | "resolve_corr" | "fact"
	Run       *RunRecord  `json:"run,omitempty"`
	Plan      *PlanRecord `json:"plan,omitempty"`
	Idx       int         `json:"idx,omitempty"`
	Actual    float64     `json:"actual,omitempty"`
	Honored   bool        `json:"honored,omitempty"`
	App       string      `json:"app,omitempty"`
	Predicted float64     `json:"predicted,omitempty"`
	Key       string      `json:"key,omitempty"`
	Value     float64     `json:"value,omitempty"`
}

// Journal attaches the write-ahead journal. Call it before the base is
// shared with loop goroutines and after any Load/ApplyWAL recovery.
func (b *Base) Journal(j Journaler) {
	b.mu.Lock()
	b.journal = j
	b.mu.Unlock()
}

// JournalErr returns the first error the journal reported, if any. Journal
// failures do not block the in-memory mutation (the loops keep running on a
// full disk), but they make the next snapshot the only durable state, so the
// daemon surfaces this error on shutdown.
func (b *Base) JournalErr() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.jerr
}

// journalLocked emits one op. Callers hold the write lock, which orders the
// emitted records exactly like the mutations they describe.
func (b *Base) journalLocked(op *walOp) {
	if b.journal == nil {
		return
	}
	data, err := json.Marshal(op)
	if err == nil {
		var seq uint64
		if seq, err = b.journal.Append(wal.KindKnowledgeOp, data); err == nil {
			b.walSeq = seq
		}
	}
	if err != nil && b.jerr == nil {
		b.jerr = err
	}
}

// ApplyWAL applies one wal.KindKnowledgeOp record during recovery. seq is
// the record's WAL sequence: records at or below the sequence the restored
// snapshot covers (carried inside the snapshot itself) are skipped, so
// replaying a tail that overlaps the snapshot is exact, never double-
// applied. It must run before Journal is attached.
func (b *Base) ApplyWAL(seq uint64, payload []byte) error {
	var op walOp
	if err := json.Unmarshal(payload, &op); err != nil {
		return fmt.Errorf("knowledge: journal decode: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq <= b.walSeq {
		return nil // already reflected by the snapshot this replay tails
	}
	if err := b.applyOpLocked(&op); err != nil {
		return err
	}
	b.walSeq = seq
	return nil
}

// applyOpLocked replays one decoded op under the write lock, without
// re-journaling.
func (b *Base) applyOpLocked(op *walOp) error {
	switch op.Op {
	case "run":
		if op.Run == nil {
			return fmt.Errorf("knowledge: journal run op without record")
		}
		b.runs = append(b.runs, *op.Run)
	case "plan":
		if op.Plan == nil {
			return fmt.Errorf("knowledge: journal plan op without record")
		}
		b.plans = append(b.plans, *op.Plan)
	case "resolve_plan":
		if op.Idx < 0 || op.Idx >= len(b.plans) {
			return fmt.Errorf("knowledge: journal resolves plan %d of %d", op.Idx, len(b.plans))
		}
		b.plans[op.Idx].Actual = op.Actual
		b.plans[op.Idx].Honored = op.Honored
		b.plans[op.Idx].Resolved = true
	case "resolve_corr":
		b.resolveCorrectionLocked(op.App, op.Predicted, op.Actual)
	case "fact":
		b.facts[op.Key] = op.Value
	default:
		return fmt.Errorf("knowledge: unknown journal op %q", op.Op)
	}
	return nil
}
