package control

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// Capability names one substrate a case factory needs from its Env. Spawn
// validates a factory's Requires list against the Env before building, so a
// deployment missing a substrate fails with a named error instead of a nil
// dereference inside a case constructor.
type Capability string

// The capabilities a deployment environment can provide.
const (
	CapQuerier   Capability = "querier"
	CapPlant     Capability = "plant"
	CapScheduler Capability = "scheduler"
	CapApps      Capability = "apps"
	CapCluster   Capability = "cluster"
	CapPFS       Capability = "pfs"
	CapKnowledge Capability = "knowledge"
	CapClock     Capability = "clock"
)

// Env is the deployment environment a registry spawns loops into: the
// telemetry query surface, the managed substrates, and the cross-cutting
// services (knowledge, clock, rng, bus, audit) wired onto every spawned
// loop. Fields may be nil; factories declare what they require.
type Env struct {
	Querier   telemetry.Querier
	Plant     *facility.Plant
	Scheduler *sched.Scheduler
	Apps      *app.Runtime
	Cluster   *hw.Cluster
	FS        *pfs.FS
	Knowledge *knowledge.Base

	// Clock and Rng drive deferred human-in-the-loop executions and any
	// case that needs the time (schedcase's prediction resolution).
	Clock sim.Clock
	Rng   *rand.Rand

	// Bus and Audit, when set, are attached to every spawned loop.
	Bus   *bus.Bus
	Audit *core.AuditLog
}

// Has reports whether the environment provides c.
func (e *Env) Has(c Capability) bool {
	switch c {
	case CapQuerier:
		return e.Querier != nil
	case CapPlant:
		return e.Plant != nil
	case CapScheduler:
		return e.Scheduler != nil
	case CapApps:
		return e.Apps != nil
	case CapCluster:
		return e.Cluster != nil
	case CapPFS:
		return e.FS != nil
	case CapKnowledge:
		return e.Knowledge != nil
	case CapClock:
		return e.Clock != nil
	}
	return false
}

// Missing returns the subset of req the environment does not provide.
func (e *Env) Missing(req []Capability) []Capability {
	var out []Capability
	for _, c := range req {
		if !e.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// BuiltLoop is one loop produced by a CaseFactory build. EveryMul stretches
// the loop's cadence relative to the spec period (a hierarchical case's
// parent loop ticking once per N child ticks registers EveryMul N); zero
// means 1.
type BuiltLoop struct {
	Loop     *core.Loop
	EveryMul int
}

// CaseFactory declares one spawnable use case: its name, documentation,
// required capabilities, default configuration (the config schema — Spawn
// JSON-merges spec overrides onto it), default fleet priority and period,
// and the build function.
type CaseFactory struct {
	// Name is the spec vocabulary ("power", "ost", ...).
	Name string
	// Doc is a one-line description surfaced by the cases op.
	Doc string
	// Requires lists the substrates Build dereferences.
	Requires []Capability
	// Defaults returns a pointer to a fresh config struct carrying the
	// case's default values; spec.Config is unmarshaled over it.
	Defaults func() interface{}
	// Priority is the default fleet arbitration priority.
	Priority int
	// Period is the default tick cadence.
	Period Duration
	// Build constructs the case's loops from the merged config. The first
	// loop is the case's primary (the one named by spec.Name overrides).
	Build func(env *Env, cfg interface{}) ([]BuiltLoop, error)
}

// DefaultsJSON marshals the factory's default config — the documented
// schema, with every field at its default.
func (f *CaseFactory) DefaultsJSON() json.RawMessage {
	if f.Defaults == nil {
		return nil
	}
	data, err := json.Marshal(f.Defaults())
	if err != nil {
		return nil
	}
	return data
}

// Registry maps case names to factories. It is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]CaseFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]CaseFactory)}
}

// Register adds a factory; registering a duplicate or anonymous case is an
// error.
func (r *Registry) Register(f CaseFactory) error {
	if f.Name == "" {
		return fmt.Errorf("control: factory with empty name")
	}
	if f.Build == nil {
		return fmt.Errorf("control: factory %q without Build", f.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[f.Name]; dup {
		return fmt.Errorf("control: duplicate factory %q", f.Name)
	}
	r.factories[f.Name] = f
	return nil
}

// MustRegister is Register, panicking on error (init-time wiring).
func (r *Registry) MustRegister(f CaseFactory) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the named factory.
func (r *Registry) Lookup(name string) (CaseFactory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[name]
	return f, ok
}

// Names returns the registered case names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Spawned is the result of instantiating a LoopSpec: the built loops (the
// primary first), the resolved priority and period, and the normalized spec
// (name, mode, priority, and period filled in) the control API reports
// back.
type Spawned struct {
	Loops    []BuiltLoop
	Spec     LoopSpec
	Priority int
	Period   time.Duration
}

// Loop returns the case's primary loop.
func (s *Spawned) Loop() *core.Loop { return s.Loops[0].Loop }

// Spawn instantiates spec against env: it resolves the case factory,
// validates capabilities, merges the spec's config overrides onto the
// factory defaults (unknown fields rejected), builds the loops, and wires
// mode, bus, audit, clock, and rng onto each.
func (r *Registry) Spawn(env *Env, spec LoopSpec) (*Spawned, error) {
	if env == nil {
		return nil, fmt.Errorf("control: Spawn with nil env")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f, ok := r.Lookup(spec.Case)
	if !ok {
		return nil, fmt.Errorf("control: unknown case %q (have %v)", spec.Case, r.Names())
	}
	if missing := env.Missing(f.Requires); len(missing) > 0 {
		return nil, fmt.Errorf("control: case %q requires missing capabilities %v", spec.Case, missing)
	}

	var cfg interface{}
	if f.Defaults != nil {
		cfg = f.Defaults()
		if len(spec.Config) > 0 {
			dec := json.NewDecoder(bytes.NewReader(spec.Config))
			dec.DisallowUnknownFields()
			if err := dec.Decode(cfg); err != nil {
				return nil, fmt.Errorf("control: case %q config: %w", spec.Case, err)
			}
		}
	}

	built, err := f.Build(env, cfg)
	if err != nil {
		return nil, fmt.Errorf("control: case %q: %w", spec.Case, err)
	}
	if len(built) == 0 || built[0].Loop == nil {
		return nil, fmt.Errorf("control: case %q built no loops", spec.Case)
	}

	mode := core.Autonomous
	if spec.Mode != "" {
		mode, _ = core.ParseMode(spec.Mode) // validated above
	}
	if spec.Name != "" {
		// The primary takes the override; secondary loops (a hierarchical
		// case's children) are namespaced under it so one case can be
		// spawned twice without name collisions.
		built[0].Loop.Name = spec.Name
		for i := 1; i < len(built); i++ {
			built[i].Loop.Name = spec.Name + "/" + built[i].Loop.Name
		}
	}
	human := core.DefaultHumanModel()
	if spec.Human != nil {
		human = spec.Human.Model()
	}
	for i := range built {
		l := built[i].Loop
		l.Mode = mode
		l.Human = human
		if l.Bus == nil {
			l.Bus = env.Bus
		}
		if l.Audit == nil {
			l.Audit = env.Audit
		}
		if l.Clock == nil {
			l.Clock = env.Clock
		}
		if l.Rng == nil {
			l.Rng = env.Rng
		}
		if built[i].EveryMul < 1 {
			built[i].EveryMul = 1
		}
	}

	out := &Spawned{Loops: built, Priority: f.Priority, Period: f.Period.D()}
	if spec.Priority != nil {
		out.Priority = *spec.Priority
	}
	if spec.Period > 0 {
		out.Period = spec.Period.D()
	}
	norm := spec
	norm.Name = built[0].Loop.Name
	norm.Mode = mode.String()
	norm.Priority = &out.Priority
	norm.Period = Duration(out.Period)
	out.Spec = norm
	return out, nil
}
