package control

import (
	"encoding/json"
	"fmt"
	"sort"

	"autoloop/internal/core"
)

// Control-plane persistence. The service's durable state is snapshot-only
// (no per-op journal): group specs, applied guards, per-loop lifecycle
// states and modes, and the pending-approval queue are all small and change
// at human cadence, so the daemon serializes them with each periodic
// snapshot and recovery re-spawns the fleet from the registry.
//
// Pending approvals restore LIVE, not as tombstones: a WireAction is pure
// data, so each queue entry is rebuilt as a core.DeferredAction pointing at
// the re-spawned loop, captured at that loop's post-restore lifecycle
// generation. An approval granted after recovery therefore executes through
// the re-spawned loop's Executor exactly as it would have before the crash;
// entries whose loop was restored paused or draining settle as stale, the
// same verdict the lifecycle rules would have reached without the restart.

// LoopSnap is one member loop's serialized lifecycle.
type LoopSnap struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Mode  string `json:"mode"`
}

// GroupSnap is one managed group: the normalized spec it was spawned from,
// the guard specs appended since (set-guard ops), and each member loop's
// lifecycle state.
type GroupSnap struct {
	Spec   LoopSpec    `json:"spec"`
	Guards []GuardSpec `json:"guards,omitempty"`
	Loops  []LoopSnap  `json:"loops"`
}

// PendingSnap is one queued approval, including its timeout policy so a
// contingency or simulated-operator deadline survives the restart.
type PendingSnap struct {
	Seq           uint64     `json:"seq"`
	Loop          string     `json:"loop"`
	Decided       Duration   `json:"decided"`
	Action        WireAction `json:"action"`
	ContingencyAt Duration   `json:"contingency_at,omitempty"`
	AutoAt        Duration   `json:"auto_at,omitempty"`
	AutoDrop      bool       `json:"auto_drop,omitempty"`
}

// ServiceSnap is the whole control plane's serialized state.
type ServiceSnap struct {
	Now     Duration      `json:"now"`
	Seq     uint64        `json:"seq"`
	Groups  []GroupSnap   `json:"groups,omitempty"`
	Pending []PendingSnap `json:"pending,omitempty"`
}

// Snapshot serializes the control plane: every managed group (sorted by
// group name, so the bytes are deterministic) and the pending-approval
// queue in queue order.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ServiceSnap{Now: Duration(s.now)}
	names := make([]string, 0, len(s.managed))
	for name := range s.managed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.managed[name]
		gs := GroupSnap{Spec: g.spec, Guards: append([]GuardSpec(nil), g.guards...)}
		for _, l := range g.loops {
			gs.Loops = append(gs.Loops, LoopSnap{Name: l.Name, State: l.State().String(), Mode: l.Mode.String()})
		}
		snap.Groups = append(snap.Groups, gs)
	}
	s.qmu.Lock()
	snap.Seq = s.seq
	for _, seq := range s.order {
		e := s.pending[seq]
		if e == nil {
			continue
		}
		snap.Pending = append(snap.Pending, PendingSnap{
			Seq: e.seq, Loop: e.d.Loop.Name, Decided: Duration(e.d.Decided),
			Action: wireAction(e.d.Action), ContingencyAt: Duration(e.contingencyAt),
			AutoAt: Duration(e.autoAt), AutoDrop: e.autoDrop,
		})
	}
	s.qmu.Unlock()
	return json.Marshal(&snap)
}

// Restore rebuilds the control plane from a Snapshot payload. It must be
// called on a service that has not spawned anything yet, with the same
// registry and environment the snapshot's specs were spawned against. Each
// group is re-spawned from its normalized spec, its guards re-applied, and
// its loops driven to their recorded lifecycle states; the pending queue is
// rebuilt with live deferred actions bound to the re-spawned loops.
func (s *Service) Restore(data []byte) error {
	var snap ServiceSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("control: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.managed) > 0 {
		return fmt.Errorf("control: restore into a service that already manages %d groups", len(s.managed))
	}
	s.now = snap.Now.D()
	for _, gs := range snap.Groups {
		sp, err := s.spawnLocked(gs.Spec)
		if err != nil {
			return fmt.Errorf("control: restore group %q: %w", gs.Spec.Name, err)
		}
		g := s.byLoop[sp.Loop().Name]
		for _, guardSpec := range gs.Guards {
			for _, l := range g.loops {
				guard, err := buildGuard(guardSpec)
				if err != nil {
					return fmt.Errorf("control: restore group %q: %w", gs.Spec.Name, err)
				}
				l.Guards = append(l.Guards, guard)
			}
			g.guards = append(g.guards, guardSpec)
		}
		for _, ls := range gs.Loops {
			var loop *core.Loop
			for _, l := range g.loops {
				if l.Name == ls.Name {
					loop = l
					break
				}
			}
			if loop == nil {
				return fmt.Errorf("control: restore: group %q has no loop %q", gs.Spec.Name, ls.Name)
			}
			if ls.Mode != "" {
				mode, err := core.ParseMode(ls.Mode)
				if err != nil {
					return fmt.Errorf("control: restore loop %q: %w", ls.Name, err)
				}
				loop.Mode = mode
			}
			state, err := core.ParseLifecycleState(ls.State)
			if err != nil {
				return fmt.Errorf("control: restore loop %q: %w", ls.Name, err)
			}
			switch state {
			case core.StateCreated:
				// The spawn left it created.
			case core.StateRunning:
				err = loop.Start()
			case core.StatePaused:
				err = loop.Pause()
			case core.StateDraining:
				err = loop.Drain()
			case core.StateStopped:
				err = loop.Stop()
			}
			if err != nil {
				return fmt.Errorf("control: restore loop %q to %s: %w", ls.Name, state, err)
			}
		}
	}

	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.seq = snap.Seq
	for _, ps := range snap.Pending {
		g := s.byLoop[ps.Loop]
		if g == nil {
			return fmt.Errorf("control: restore: pending action %d names unknown loop %q", ps.Seq, ps.Loop)
		}
		var loop *core.Loop
		for _, l := range g.loops {
			if l.Name == ps.Loop {
				loop = l
				break
			}
		}
		if loop == nil {
			return fmt.Errorf("control: restore: pending action %d names unknown loop %q", ps.Seq, ps.Loop)
		}
		e := &pendingEntry{
			seq: ps.Seq,
			d: core.DeferredAction{
				Loop: loop, Decided: ps.Decided.D(), Action: coreAction(ps.Action),
				// Captured at the re-spawned loop's current generation: an
				// approval after recovery executes; if the loop was restored
				// paused or draining, the entry settles as stale instead.
				Gen: loop.Generation(),
			},
			contingencyAt: ps.ContingencyAt.D(),
			autoAt:        ps.AutoAt.D(),
			autoDrop:      ps.AutoDrop,
		}
		e.info = PendingInfo{
			Seq: e.seq, Loop: ps.Loop, Decided: ps.Decided,
			Action: ps.Action, ContingencyAt: ps.ContingencyAt,
		}
		s.pending[e.seq] = e
		s.order = append(s.order, e.seq)
	}
	return nil
}

// coreAction inverts wireAction.
func coreAction(a WireAction) core.Action {
	return core.Action{
		Kind: a.Kind, Subject: a.Subject, Amount: a.Amount,
		Confidence: a.Confidence, Explanation: a.Explanation,
	}
}
