package control_test

import (
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
)

// BenchmarkControlDispatch measures one control.v1 request/reply round trip
// through the bus: publish the request envelope, dispatch to the service,
// execute the op, publish and correlate the reply — the in-process cost
// floor under every wire interaction.
func BenchmarkControlDispatch(b *testing.B) {
	svc, busHub, _ := scriptService(b)
	if _, err := svc.Spawn(control.LoopSpec{Case: "script"}); err != nil {
		b.Fatal(err)
	}
	svc.Tick(time.Minute)
	req := control.Request{ID: "bench", Op: control.OpList}
	match := func(e bus.Envelope) bool {
		r, ok := e.Payload.(control.Reply)
		return ok && r.ID == "bench"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Call(busHub,
			bus.Envelope{Topic: control.TopicRequest, Payload: req},
			control.TopicReply, match, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceHandle isolates the op execution without the bus round
// trip, for the benchstat comparison against BenchmarkControlDispatch.
func BenchmarkServiceHandle(b *testing.B) {
	svc, _, _ := scriptService(b)
	if _, err := svc.Spawn(control.LoopSpec{Case: "script"}); err != nil {
		b.Fatal(err)
	}
	svc.Tick(time.Minute)
	req := control.Request{ID: "bench", Op: control.OpList}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := svc.Handle(req); !r.OK {
			b.Fatal("handle failed")
		}
	}
}
