package control_test

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/bus"
	"autoloop/internal/cases"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// testEnv builds a full deployment environment over the simulated
// substrate, capable of spawning every registered case.
func testEnv(t testing.TB, seed int64) (*control.Env, *sim.Engine, *telemetry.Pipeline) {
	t.Helper()
	engine := sim.NewEngine(seed)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 8
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 4, OSTBandwidthMBps: 200, DefaultStripeCount: 2})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)
	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	pipe := telemetry.NewPipeline(reg, db)
	env := &control.Env{
		Querier: db, Plant: plant, Scheduler: scheduler, Apps: runtime,
		Cluster: cl, FS: fs, Knowledge: knowledge.NewBase(),
		Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(seed)),
		Bus: bus.New(),
	}
	return env, engine, pipe
}

// TestAllSixCasesSpawnFromJSONSpecs is the acceptance check for the
// declarative layer: every registered case instantiates from a plain JSON
// LoopSpec against the standard environment and ticks under one fleet
// coordinator.
func TestAllSixCasesSpawnFromJSONSpecs(t *testing.T) {
	env, engine, pipe := testEnv(t, 1)
	reg := cases.NewRegistry()
	want := []string{"ioqos", "maintenance", "misconfig", "ost", "power", "scheduler"}
	if got := strings.Join(reg.Names(), " "); got != strings.Join(want, " ") {
		t.Fatalf("registry names = %q", got)
	}
	coord := fleet.New(1)
	svc := control.NewService(reg, env, coord, time.Minute)
	for _, name := range want {
		spec, err := control.ParseSpec([]byte(`{"case": "` + name + `"}`))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp, err := svc.Spawn(spec)
		if err != nil {
			t.Fatalf("spawn %s: %v", name, err)
		}
		if sp.Loop() == nil || sp.Spec.Mode != "autonomous" {
			t.Fatalf("spawn %s: spec = %+v", name, sp.Spec)
		}
	}
	// ioqos contributes a parent and two tenant children.
	if coord.Len() != 8 {
		t.Fatalf("coordinator has %d loops, want 8 (6 cases, ioqos = 3 loops)", coord.Len())
	}
	pipe.Drive(svc, 1)
	engine.Every(time.Minute, time.Minute, func() bool {
		pipe.Sample(engine.Now())
		return engine.Now() < 30*time.Minute
	})
	engine.RunUntil(30 * time.Minute)
	for _, l := range coord.Loops() {
		if l.State() != core.StateRunning {
			t.Errorf("loop %s state = %s, want running", l.Name, l.State())
		}
		if l.Metrics().Ticks == 0 {
			t.Errorf("loop %s never ticked", l.Name)
		}
	}
}

func TestSpawnConfigOverridesAndNormalization(t *testing.T) {
	env, _, _ := testEnv(t, 2)
	reg := cases.NewRegistry()
	spec, err := control.ParseSpec([]byte(`{
		"case": "power", "name": "cooling-west", "mode": "human-on-the-loop",
		"priority": 33, "period": "2m",
		"config": {"TempLimitC": 80, "StepC": 0.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := reg.Spawn(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	l := sp.Loop()
	if l.Name != "cooling-west" || l.Mode != core.HumanOnTheLoop {
		t.Errorf("loop = %s mode %s", l.Name, l.Mode)
	}
	if sp.Priority != 33 || sp.Period != 2*time.Minute {
		t.Errorf("priority = %d period = %v", sp.Priority, sp.Period)
	}
	// The merged config keeps defaults for untouched fields.
	var cfg struct{ TempLimitC, HeadroomC, StepC, MaxSetpointC float64 }
	if err := json.Unmarshal(sp.Spec.Config, &cfg); err == nil {
		if cfg.TempLimitC != 80 || cfg.StepC != 0.5 {
			t.Errorf("overrides not applied: %+v", cfg)
		}
	}
	if l.Bus != env.Bus || l.Clock == nil || l.Rng != env.Rng {
		t.Error("spawned loop not wired to the environment")
	}
}

func TestSpawnErrors(t *testing.T) {
	env, _, _ := testEnv(t, 3)
	reg := cases.NewRegistry()

	if _, err := reg.Spawn(env, control.LoopSpec{Case: "nonsense"}); err == nil || !strings.Contains(err.Error(), "unknown case") {
		t.Errorf("unknown case err = %v", err)
	}
	if _, err := reg.Spawn(env, control.LoopSpec{Case: "power", Config: []byte(`{"NoSuchKnob": 1}`)}); err == nil || !strings.Contains(err.Error(), "NoSuchKnob") {
		t.Errorf("unknown config field err = %v", err)
	}
	if _, err := reg.Spawn(env, control.LoopSpec{Case: "power", Mode: "telepathic"}); err == nil {
		t.Error("bad mode accepted")
	}
	bare := &control.Env{Querier: env.Querier} // no plant
	if _, err := reg.Spawn(bare, control.LoopSpec{Case: "power"}); err == nil || !strings.Contains(err.Error(), "plant") {
		t.Errorf("missing capability err = %v", err)
	}
}

func TestMultiLoopCaseSpawnsTwiceUnderDistinctNames(t *testing.T) {
	env, _, _ := testEnv(t, 4)
	svc := control.NewService(cases.NewRegistry(), env, fleet.New(1), time.Minute)
	for _, name := range []string{"ioqos-a", "ioqos-b"} {
		sp, err := svc.Spawn(control.LoopSpec{Case: "ioqos", Name: name})
		if err != nil {
			t.Fatalf("spawn %s: %v", name, err)
		}
		if sp.Loop().Name != name {
			t.Fatalf("primary = %q", sp.Loop().Name)
		}
		for _, bl := range sp.Loops[1:] {
			if !strings.HasPrefix(bl.Loop.Name, name+"/") {
				t.Fatalf("child %q not namespaced under %q", bl.Loop.Name, name)
			}
		}
	}
}

func TestParseSpecsRejectsUnknownFields(t *testing.T) {
	if _, err := control.ParseSpecs([]byte(`[{"case": "power", "priorty": 3}]`)); err == nil {
		t.Error("typo field accepted")
	}
	specs, err := control.ParseSpecs([]byte(`[{"case": "power", "period": "90s"}, {"case": "ost"}]`))
	if err != nil || len(specs) != 2 || specs[0].Period.D() != 90*time.Second {
		t.Errorf("specs = %+v, %v", specs, err)
	}
}

func TestDurationJSONForms(t *testing.T) {
	var d control.Duration
	if err := json.Unmarshal([]byte(`"1h30m"`), &d); err != nil || d.D() != 90*time.Minute {
		t.Errorf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`60000000000`), &d); err != nil || d.D() != time.Minute {
		t.Errorf("ns form: %v %v", d, err)
	}
	out, err := json.Marshal(control.Duration(5 * time.Minute))
	if err != nil || string(out) != `"5m0s"` {
		t.Errorf("marshal = %s, %v", out, err)
	}
}
