// Package control is the runtime control plane for autonomy loops: the
// deploy-and-operate surface the paper's question (ii) asks for, where loops
// are managed, not just observed.
//
// It has four layers:
//
//   - A declarative spec layer: every use case registers a CaseFactory
//     (name, config defaults, required capabilities) in a Registry, and
//     loops are instantiated from JSON-decodable LoopSpecs instead of
//     per-case constructor wiring.
//   - A lifecycle layer: spawned loops carry the core lifecycle state
//     machine (created → running → paused → draining → stopped) and can be
//     added, paused, resumed, drained, and reconfigured mid-run.
//   - A versioned wire API: control.v1 request/reply envelopes over the
//     existing bus/TCP bridge (list, get, cases, spawn, pause, resume,
//     drain, remove, set-mode, set-guard, pending), served by a Service.
//   - An operator approval surface: human-in-the-loop actions land in a
//     pending-approval queue published on control.v1.pending and are
//     settled by control.v1.approve/deny envelopes — or by the simulated
//     HumanModel as a fallback driver when no operator is connected.
//
// Compatibility: the control.v1 wire surface is additive-only — fields and
// ops may be added, never renamed, removed, or re-typed. Breaking changes
// require a control.v2 topic family (see CONTRIBUTING.md).
package control
