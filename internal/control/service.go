package control

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/fleet"
)

// Service serves the control.v1 wire API over a bus and owns the runtime
// loop set: a registry to spawn from, an environment to spawn into, a fleet
// coordinator that ticks the managed loops, and the pending-approval queue
// for human-in-the-loop actions.
//
// Threading: the Service is the coordinator's driver — attach it to the
// telemetry pipeline (pipe.Drive(svc, n)) or call Tick from the simulation
// thread. Wire requests may arrive on any goroutine (the TCP bridge's read
// loops); ops that touch loop or fleet state synchronize with Tick through
// the service mutex, and approval verdicts are queued and applied at the
// next round so action execution always happens on the tick goroutine.
// Subscribers of control.v1 topics must not publish new control requests
// synchronously from their handlers.
type Service struct {
	reg    *Registry
	env    *Env
	coord  *fleet.Coordinator
	source string
	base   time.Duration

	// mu guards the managed set, the coordinator, and every loop mutation;
	// Tick holds it for the whole round.
	mu      sync.Mutex
	managed map[string]*managedGroup // keyed by group (primary loop) name
	byLoop  map[string]*managedGroup // every member loop name -> its group
	now     time.Duration

	// qmu guards the approval queue and the verdict inbox. Lock order:
	// mu before qmu, never the reverse.
	qmu      sync.Mutex
	seq      uint64
	pending  map[uint64]*pendingEntry
	order    []uint64
	verdicts []queuedVerdict

	// human, when set, is the simulated-operator fallback driver: it
	// samples availability and latency for each queued action exactly like
	// core's HumanModel path and resolves the queue when no real operator
	// answers first.
	human *core.HumanModel

	bus     *bus.Bus
	cancels []func()
}

// managedGroup is one spawned spec: its loops (primary first), resolved
// priority/period, and the normalized spec reported by get.
type managedGroup struct {
	caseName string
	spec     LoopSpec
	loops    []*core.Loop
	priority int
	period   time.Duration
	// guards records the GuardSpecs applied by set-guard ops since spawn,
	// so snapshots can re-apply them on recovery (the built core.Guardrail
	// instances themselves are not serializable).
	guards []GuardSpec
}

// pendingEntry is one queued approval with its timeout policy.
type pendingEntry struct {
	seq  uint64
	d    core.DeferredAction
	info PendingInfo
	// contingencyAt, when positive, executes the action at that virtual
	// time (the loop's ContingencyAfter policy).
	contingencyAt time.Duration
	// autoAt, when positive, is when the simulated operator approves.
	autoAt time.Duration
	// autoDrop drops the action at the next round (simulated operator
	// absent, no contingency).
	autoDrop bool
}

type queuedVerdict struct {
	seq     uint64
	approve bool
	reason  string
}

// NewService builds a control service around a registry, an environment,
// and the fleet coordinator that will tick the managed loops. base is the
// virtual-time period between Tick calls (the control round cadence); loop
// spec periods are rounded to whole multiples of it (base <= 0 ticks every
// loop every round).
func NewService(reg *Registry, env *Env, coord *fleet.Coordinator, base time.Duration) *Service {
	if reg == nil || env == nil || coord == nil {
		panic("control: NewService requires registry, env, and coordinator")
	}
	return &Service{
		reg: reg, env: env, coord: coord, base: base,
		managed: make(map[string]*managedGroup),
		byLoop:  make(map[string]*managedGroup),
		pending: make(map[uint64]*pendingEntry),
	}
}

// SimulateHuman enables the simulated-operator fallback driver: queued
// approvals are settled by h's availability/latency model (using the
// environment's Rng and the round clock) unless a real operator answers
// first.
func (s *Service) SimulateHuman(h core.HumanModel) *Service {
	s.human = &h
	return s
}

// Coordinator exposes the fleet coordinator (arbitration rules, metrics).
func (s *Service) Coordinator() *fleet.Coordinator { return s.coord }

// Attach subscribes the service to the control.v1 request and verdict
// topics on b and publishes its replies, pending announcements, and
// resolutions there. source tags outbound envelopes. Returns s for
// chaining.
func (s *Service) Attach(b *bus.Bus, source string) *Service {
	s.bus = b
	s.source = source
	s.cancels = append(s.cancels,
		b.Subscribe(TopicRequest, s.handleRequest),
		b.Subscribe(TopicApprove, func(env bus.Envelope) { s.handleVerdict(env, true) }),
		b.Subscribe(TopicDeny, func(env bus.Envelope) { s.handleVerdict(env, false) }),
	)
	return s
}

// Close unsubscribes the service from its bus topics.
func (s *Service) Close() {
	for _, c := range s.cancels {
		c()
	}
	s.cancels = nil
}

// publish sends one envelope if a bus is attached.
func (s *Service) publish(topic string, now time.Duration, payload interface{}) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(bus.Envelope{Topic: topic, Time: now, Source: s.source, Payload: payload})
}

// Spawn instantiates spec, wires the loops into the approval surface, and
// registers them with the coordinator. It is the programmatic form of the
// spawn op.
func (s *Service) Spawn(spec LoopSpec) (*Spawned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawnLocked(spec)
}

func (s *Service) spawnLocked(spec LoopSpec) (*Spawned, error) {
	sp, err := s.reg.Spawn(s.env, spec)
	if err != nil {
		return nil, err
	}
	for _, bl := range sp.Loops {
		if _, dup := s.byLoop[bl.Loop.Name]; dup {
			return nil, fmt.Errorf("control: loop %q already managed", bl.Loop.Name)
		}
	}
	for _, have := range s.coord.Loops() {
		for _, bl := range sp.Loops {
			if have.Name == bl.Loop.Name {
				return nil, fmt.Errorf("control: loop %q already in the fleet", bl.Loop.Name)
			}
		}
	}
	every := 1
	if s.base > 0 && sp.Period > 0 {
		if every = int((sp.Period + s.base/2) / s.base); every < 1 {
			every = 1
		}
	}
	g := &managedGroup{
		caseName: spec.Case, spec: sp.Spec, priority: sp.Priority, period: sp.Period,
	}
	for _, bl := range sp.Loops {
		bl.Loop.Approvals = s
		g.loops = append(g.loops, bl.Loop)
		s.coord.AddEvery(bl.Loop, sp.Priority, every*bl.EveryMul)
		s.byLoop[bl.Loop.Name] = g
	}
	s.managed[g.loops[0].Name] = g
	return sp, nil
}

// Tick runs one control round at virtual time now: queued verdicts and
// expired approval timeouts are applied, stale pending actions are swept,
// and the fleet coordinator ticks. It implements telemetry.Ticker so the
// monitoring cadence can drive the control plane.
func (s *Service) Tick(now time.Duration) {
	s.mu.Lock()
	s.now = now
	resolved := s.settleQueue(now)
	s.coord.Tick(now)
	s.pruneStopped()
	s.mu.Unlock()
	for _, r := range resolved {
		s.publish(TopicResolved, now, r)
	}
}

// pruneStopped forgets managed groups whose every loop has stopped (the
// coordinator has already dropped them from its membership).
func (s *Service) pruneStopped() {
	for name, g := range s.managed {
		alive := false
		for _, l := range g.loops {
			if l.State() != core.StateStopped {
				alive = true
				break
			}
		}
		if !alive {
			delete(s.managed, name)
			for _, l := range g.loops {
				delete(s.byLoop, l.Name)
			}
		}
	}
}

// settleQueue applies operator verdicts, approval timeouts, the simulated
// operator, and staleness sweeps to the pending queue. Caller holds mu;
// the returned resolutions are published after the round releases it.
func (s *Service) settleQueue(now time.Duration) []Resolution {
	s.qmu.Lock()
	verdicts := s.verdicts
	s.verdicts = nil
	s.qmu.Unlock()

	var out []Resolution
	settle := func(e *pendingEntry, approve bool, outcome, reason string) {
		stale := e.d.Stale()
		executed := e.d.Resolve(now, approve, reason)
		if stale {
			outcome = OutcomeStale
		}
		out = append(out, Resolution{
			Seq: e.seq, Loop: e.d.Loop.Name, Outcome: outcome, Executed: executed, Reason: reason,
		})
		s.dropPending(e.seq)
	}

	for _, v := range verdicts {
		e := s.lookupPending(v.seq)
		if e == nil {
			continue // settled by an earlier verdict or timeout since the ack
		}
		if v.approve {
			settle(e, true, OutcomeApproved, v.reason)
		} else {
			settle(e, false, OutcomeDenied, v.reason)
		}
	}

	// Timeouts, the simulated operator, and staleness — in queue order.
	s.qmu.Lock()
	snapshot := make([]*pendingEntry, 0, len(s.order))
	for _, seq := range s.order {
		if e := s.pending[seq]; e != nil {
			snapshot = append(snapshot, e)
		}
	}
	s.qmu.Unlock()
	drop := func(e *pendingEntry, reason string) {
		e.d.Drop(now, reason) // counts DroppedActions, like the core fallback
		outcome := OutcomeDropped
		if e.d.Stale() {
			outcome = OutcomeStale
		}
		out = append(out, Resolution{
			Seq: e.seq, Loop: e.d.Loop.Name, Outcome: outcome, Executed: false, Reason: reason,
		})
		s.dropPending(e.seq)
	}
	for _, e := range snapshot {
		switch {
		case e.d.Stale():
			settle(e, false, OutcomeStale, "invalidated by lifecycle")
		case e.autoDrop:
			drop(e, "human absent, no contingency")
		case e.autoAt > 0 && now >= e.autoAt:
			settle(e, true, OutcomeApproved, "simulated operator")
		case e.contingencyAt > 0 && now >= e.contingencyAt:
			settle(e, true, OutcomeContingency, "approval window elapsed")
		}
	}
	return out
}

func (s *Service) lookupPending(seq uint64) *pendingEntry {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.pending[seq]
}

func (s *Service) dropPending(seq uint64) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	delete(s.pending, seq)
	for i, have := range s.order {
		if have == seq {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Defer implements core.ApprovalSink: a human-in-the-loop action lands in
// the pending queue, its timeout policy is fixed from the loop's HumanModel
// (and the simulated operator, when enabled), and the queue entry is
// announced on control.v1.pending.
func (s *Service) Defer(d core.DeferredAction) {
	now := d.Decided
	e := &pendingEntry{d: d}
	if after := d.Loop.Human.ContingencyAfter; after > 0 {
		e.contingencyAt = now + after
	}
	if s.human != nil && s.env.Rng != nil {
		if s.env.Rng.Float64() < s.human.Availability {
			e.autoAt = now + s.human.Latency.Sample(s.env.Rng)
		} else if e.contingencyAt == 0 {
			e.autoDrop = true
		}
	}
	s.qmu.Lock()
	s.seq++
	e.seq = s.seq
	e.info = PendingInfo{
		Seq: e.seq, Loop: d.Loop.Name, Decided: Duration(d.Decided),
		Action: wireAction(d.Action), ContingencyAt: Duration(e.contingencyAt),
	}
	s.pending[e.seq] = e
	s.order = append(s.order, e.seq)
	info := e.info
	s.qmu.Unlock()
	s.publish(TopicPending, now, info)
}

// handleVerdict queues one approve/deny and acknowledges it.
func (s *Service) handleVerdict(env bus.Envelope, approve bool) {
	var v Verdict
	if err := bus.DecodePayload(env, &v); err != nil {
		return
	}
	s.reply(s.Verdict(approve, v))
}

// Verdict queues one operator approve/deny verdict and returns the ack
// reply (outcome "queued"; the final fate is published on TopicResolved
// when the next round applies it). It is the programmatic form of an
// approve/deny envelope, exported so in-process embedders — notably the
// HTTP gateway — can settle pending actions without a bus.
func (s *Service) Verdict(approve bool, v Verdict) Reply {
	op := OpDeny
	if approve {
		op = OpApprove
	}
	e := s.lookupPending(v.Seq)
	if e == nil {
		return Reply{ID: v.ID, Op: op, OK: false, Error: fmt.Sprintf("no pending action %d", v.Seq)}
	}
	if v.Loop != "" && v.Loop != e.d.Loop.Name {
		return Reply{ID: v.ID, Op: op, OK: false, Error: fmt.Sprintf(
			"pending action %d belongs to loop %q, not %q", v.Seq, e.d.Loop.Name, v.Loop)}
	}
	s.qmu.Lock()
	s.verdicts = append(s.verdicts, queuedVerdict{seq: v.Seq, approve: approve, reason: v.Reason})
	s.qmu.Unlock()
	return Reply{ID: v.ID, Op: op, OK: true, Resolution: &Resolution{
		Seq: v.Seq, Loop: e.d.Loop.Name, Outcome: OutcomeQueued,
	}}
}

// OpApprove and OpDeny name the verdict pseudo-ops used in acks.
const (
	OpApprove = "approve"
	OpDeny    = "deny"
)

// reply publishes one Reply on TopicReply.
func (s *Service) reply(r Reply) {
	s.publish(TopicReply, s.lastNow(), r)
}

func (s *Service) lastNow() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// handleRequest dispatches one control.v1 request envelope.
func (s *Service) handleRequest(env bus.Envelope) {
	var req Request
	if err := bus.DecodePayload(env, &req); err != nil {
		s.reply(Reply{Op: "?", OK: false, Error: err.Error()})
		return
	}
	s.reply(s.Handle(req))
}

// Handle executes one control request and returns its reply. It is exported
// so in-process embedders can drive the control surface without a bus.
func (s *Service) Handle(req Request) Reply {
	r := Reply{ID: req.ID, Op: req.Op}
	fail := func(format string, args ...interface{}) Reply {
		r.OK = false
		r.Error = fmt.Sprintf(format, args...)
		return r
	}
	switch req.Op {
	case OpList:
		s.mu.Lock()
		r.Loops = s.statusesLocked()
		s.mu.Unlock()
		r.OK = true
	case OpGet:
		s.mu.Lock()
		g := s.byLoop[req.Loop]
		if g == nil {
			s.mu.Unlock()
			return fail("unknown loop %q", req.Loop)
		}
		for _, l := range g.loops {
			st := s.statusLocked(g, l)
			r.Loops = append(r.Loops, st)
			if l.Name == req.Loop || (r.Loop == nil && l == g.loops[0]) {
				cp := st
				r.Loop = &cp
			}
		}
		spec := g.spec
		s.mu.Unlock()
		r.Spec = &spec
		r.OK = true
	case OpCases:
		for _, name := range s.reg.Names() {
			f, _ := s.reg.Lookup(name)
			reqs := make([]string, 0, len(f.Requires))
			for _, c := range f.Requires {
				reqs = append(reqs, string(c))
			}
			r.Cases = append(r.Cases, CaseInfo{
				Case: f.Name, Doc: f.Doc, Requires: reqs,
				Defaults: f.DefaultsJSON(), Priority: f.Priority, Period: f.Period,
			})
		}
		r.OK = true
	case OpSpawn:
		if req.Spec == nil {
			return fail("spawn without spec")
		}
		s.mu.Lock()
		sp, err := s.spawnLocked(*req.Spec)
		if err != nil {
			s.mu.Unlock()
			return fail("%v", err)
		}
		g := s.byLoop[sp.Loop().Name]
		st := s.statusLocked(g, sp.Loop())
		s.mu.Unlock()
		r.Loop = &st
		spec := sp.Spec
		r.Spec = &spec
		r.OK = true
	case OpPause, OpResume, OpDrain, OpRemove:
		s.mu.Lock()
		g := s.byLoop[req.Loop]
		if g == nil {
			s.mu.Unlock()
			return fail("unknown loop %q", req.Loop)
		}
		var err error
		for _, l := range g.loops {
			switch req.Op {
			case OpPause:
				err = l.Pause()
			case OpResume:
				err = l.Resume()
			case OpDrain:
				err = l.Drain()
			case OpRemove:
				_ = l.Stop()
				s.coord.Remove(l.Name)
			}
			if err != nil {
				break
			}
		}
		if req.Op == OpRemove {
			delete(s.managed, g.loops[0].Name)
			for _, l := range g.loops {
				delete(s.byLoop, l.Name)
			}
		}
		st := s.statusLocked(g, g.loops[0])
		s.mu.Unlock()
		if err != nil {
			return fail("%v", err)
		}
		r.Loop = &st
		r.OK = true
	case OpSetMode:
		mode, err := core.ParseMode(req.Mode)
		if err != nil {
			return fail("%v", err)
		}
		s.mu.Lock()
		g := s.byLoop[req.Loop]
		if g == nil {
			s.mu.Unlock()
			return fail("unknown loop %q", req.Loop)
		}
		for _, l := range g.loops {
			l.Mode = mode
		}
		g.spec.Mode = mode.String()
		st := s.statusLocked(g, g.loops[0])
		s.mu.Unlock()
		r.Loop = &st
		r.OK = true
	case OpSetGuard:
		if req.Guard == nil {
			return fail("set-guard without guard")
		}
		make1 := func() (core.Guardrail, error) { return buildGuard(*req.Guard) }
		s.mu.Lock()
		g := s.byLoop[req.Loop]
		if g == nil {
			s.mu.Unlock()
			return fail("unknown loop %q", req.Loop)
		}
		for _, l := range g.loops {
			guard, err := make1() // one stateful guard instance per loop
			if err != nil {
				s.mu.Unlock()
				return fail("%v", err)
			}
			l.Guards = append(l.Guards, guard)
		}
		g.guards = append(g.guards, *req.Guard)
		st := s.statusLocked(g, g.loops[0])
		s.mu.Unlock()
		r.Loop = &st
		r.OK = true
	case OpMembers:
		// A single-process service has no worker directory; answering with
		// an empty list (rather than an error) lets operator tooling probe
		// any deployment with the same request.
		r.OK = true
	case OpPending:
		s.qmu.Lock()
		for _, seq := range s.order {
			if e := s.pending[seq]; e != nil {
				r.Pending = append(r.Pending, e.info)
			}
		}
		s.qmu.Unlock()
		r.OK = true
	default:
		return fail("unknown op %q", req.Op)
	}
	return r
}

// buildGuard constructs one guardrail from its wire spec.
func buildGuard(gs GuardSpec) (core.Guardrail, error) {
	switch gs.Kind {
	case "confidence":
		return core.ConfidenceGate{Min: gs.Min}, nil
	case "rate-limit":
		if gs.Max <= 0 || gs.Window <= 0 {
			return nil, fmt.Errorf("control: rate-limit guard requires positive max and window")
		}
		return core.NewRateLimit(gs.Max, gs.Window.D()), nil
	case "subject-cap":
		if gs.Max <= 0 {
			return nil, fmt.Errorf("control: subject-cap guard requires positive max")
		}
		return core.NewSubjectCap(gs.Action, gs.Max), nil
	case "dry-run":
		return core.DryRun{}, nil
	}
	return nil, fmt.Errorf("control: unknown guard kind %q", gs.Kind)
}

// statusesLocked reports every managed loop, grouped and ordered by group
// name then loop name. Caller holds mu.
func (s *Service) statusesLocked() []LoopStatus {
	groups := make([]string, 0, len(s.managed))
	for name := range s.managed {
		groups = append(groups, name)
	}
	sort.Strings(groups)
	var out []LoopStatus
	for _, name := range groups {
		g := s.managed[name]
		for _, l := range g.loops {
			out = append(out, s.statusLocked(g, l))
		}
	}
	return out
}

// statusLocked builds one loop's status. Caller holds mu.
func (s *Service) statusLocked(g *managedGroup, l *core.Loop) LoopStatus {
	pend := 0
	s.qmu.Lock()
	for _, seq := range s.order {
		if e := s.pending[seq]; e != nil && e.d.Loop == l {
			pend++
		}
	}
	s.qmu.Unlock()
	return LoopStatus{
		Name: l.Name, Case: g.caseName, Group: g.loops[0].Name,
		State: l.State().String(), Mode: l.Mode.String(),
		Priority: g.priority, Period: Duration(g.period),
		Generation: l.Generation(), Guards: len(l.Guards), Pending: pend,
		Metrics: wireMetrics(l.Metrics()),
	}
}
