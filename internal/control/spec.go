package control

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/sim"
)

// Duration is a time.Duration that decodes from either a Go duration string
// ("5m", "1h30m") or a nanosecond count, and encodes as the string form —
// the JSON vocabulary operators actually write.
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String implements fmt.Stringer.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m" strings and raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("control: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseInt(string(bytes.TrimSpace(data)), 10, 64)
	if err != nil {
		return fmt.Errorf("control: bad duration %s: %w", data, err)
	}
	*d = Duration(ns)
	return nil
}

// LoopSpec declares one loop deployment: which case to instantiate, its
// configuration overrides, operating mode, fleet arbitration priority, and
// tick period. It is the unit of the declarative layer — JSON-decodable so
// specs can live in files, arrive over the wire, and be reported back by
// the control API.
//
// Zero fields take the case factory's defaults: an empty Mode means
// autonomous, a nil Priority means the factory's recommended fleet
// priority, a zero Period means the factory's default cadence, and an
// omitted Config keeps every default. Config uses the case's Go field
// names; time.Duration fields inside case configs are nanosecond numbers.
type LoopSpec struct {
	// Case names the registered CaseFactory ("power", "ost", "scheduler",
	// "maintenance", "misconfig", "ioqos").
	Case string `json:"case"`
	// Name overrides the spawned loop's name (useful for running one case
	// twice); empty keeps the case's own loop name.
	Name string `json:"name,omitempty"`
	// Config holds case-specific overrides merged over the factory's
	// defaults. Unknown fields are rejected.
	Config json.RawMessage `json:"config,omitempty"`
	// Mode is the operating mode: "autonomous" (default),
	// "human-on-the-loop", or "human-in-the-loop".
	Mode string `json:"mode,omitempty"`
	// Priority is the fleet arbitration priority; nil takes the factory
	// default.
	Priority *int `json:"priority,omitempty"`
	// Period is the loop's tick cadence ("1m"); zero takes the factory
	// default. Under a coordinator it is rounded to a whole multiple of
	// the coordinator's base round period.
	Period Duration `json:"period,omitempty"`
	// Human tunes the approval policy for human-in-the-loop operation;
	// nil keeps the paper's default model (15m median response, 80%
	// availability, no contingency).
	Human *HumanSpec `json:"human,omitempty"`
}

// HumanSpec is the declarative form of core.HumanModel: the approver's
// response-latency distribution, availability, and the contingency window
// after which a deferred action executes anyway.
type HumanSpec struct {
	// Availability is the probability the approver answers at all.
	Availability float64 `json:"availability"`
	// MedianLatency is the median approval response time.
	MedianLatency Duration `json:"median_latency"`
	// LatencyCV is the latency distribution's coefficient of variation
	// (default 0.8).
	LatencyCV float64 `json:"latency_cv,omitempty"`
	// ContingencyAfter, when positive, executes the action anyway once
	// the approval surface has been silent this long.
	ContingencyAfter Duration `json:"contingency_after,omitempty"`
}

// Model converts the spec to the core human model.
func (h *HumanSpec) Model() core.HumanModel {
	cv := h.LatencyCV
	if cv <= 0 {
		cv = 0.8
	}
	return core.HumanModel{
		Latency:          sim.LogNormal{MeanV: h.MedianLatency.D(), CV: cv},
		Availability:     h.Availability,
		ContingencyAfter: h.ContingencyAfter.D(),
	}
}

// Validate checks the statically checkable parts of the spec.
func (s *LoopSpec) Validate() error {
	if s.Case == "" {
		return fmt.Errorf("control: spec missing case")
	}
	if s.Mode != "" {
		if _, err := core.ParseMode(s.Mode); err != nil {
			return fmt.Errorf("control: spec %s: %w", s.Case, err)
		}
	}
	if s.Period < 0 {
		return fmt.Errorf("control: spec %s: negative period", s.Case)
	}
	return nil
}

// ParseSpec decodes one LoopSpec from JSON, rejecting unknown fields.
func ParseSpec(data []byte) (LoopSpec, error) {
	var s LoopSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return LoopSpec{}, fmt.Errorf("control: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return LoopSpec{}, err
	}
	return s, nil
}

// ParseSpecs decodes a JSON array of LoopSpecs (a spec file).
func ParseSpecs(data []byte) ([]LoopSpec, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("control: parse specs: %w", err)
	}
	specs := make([]LoopSpec, 0, len(raw))
	for i, r := range raw {
		s, err := ParseSpec(r)
		if err != nil {
			return nil, fmt.Errorf("control: spec %d: %w", i, err)
		}
		specs = append(specs, s)
	}
	return specs, nil
}
