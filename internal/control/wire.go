package control

import (
	"encoding/json"
	"time"

	"autoloop/internal/core"
)

// WireVersion is the control-plane wire version. All topics and payload
// shapes under it are additive-only; incompatible changes go to a new
// version prefix.
const WireVersion = "v1"

// control.v1 topics. Requests and verdicts travel client → service;
// replies, pending announcements, and resolutions travel service → client.
// All of them cross the existing bus/TCP bridge as ordinary envelopes.
const (
	// TopicRequest carries Request payloads; each is answered on
	// TopicReply with the same correlation id.
	TopicRequest = "control.v1.req"
	// TopicReply carries Reply payloads.
	TopicReply = "control.v1.resp"
	// TopicPending announces each new pending human-in-the-loop action
	// (PendingInfo payload) awaiting an operator verdict.
	TopicPending = "control.v1.pending"
	// TopicApprove and TopicDeny carry operator Verdict payloads.
	TopicApprove = "control.v1.approve"
	TopicDeny    = "control.v1.deny"
	// TopicResolved reports the final fate of each pending action
	// (Resolution payload): approved, denied, contingency, dropped, stale.
	TopicResolved = "control.v1.resolved"
)

// Request ops.
const (
	OpList     = "list"      // enumerate managed loops
	OpGet      = "get"       // one loop: spec + status + metrics
	OpCases    = "cases"     // enumerate spawnable case factories
	OpSpawn    = "spawn"     // instantiate a LoopSpec into the fleet
	OpPause    = "pause"     // lifecycle: running -> paused
	OpResume   = "resume"    // lifecycle: paused -> running
	OpDrain    = "drain"     // lifecycle: graceful stop at the round barrier
	OpRemove   = "remove"    // stop and unregister a loop
	OpSetMode  = "set-mode"  // change the operating mode at runtime
	OpSetGuard = "set-guard" // append a guardrail (confidence gate, rate limit, ...)
	OpPending  = "pending"   // list actions awaiting approval
	// OpMembers enumerates a cluster coordinator's worker directory. A
	// single-process control.Service answers it with an empty member list.
	OpMembers = "members"
)

// Request is the payload of TopicRequest envelopes. ID correlates the
// reply; Loop names the target for lifecycle ops; Spec, Mode, and Guard
// carry op-specific arguments.
type Request struct {
	ID    string     `json:"id,omitempty"`
	Op    string     `json:"op"`
	Loop  string     `json:"loop,omitempty"`
	Spec  *LoopSpec  `json:"spec,omitempty"`
	Mode  string     `json:"mode,omitempty"`
	Guard *GuardSpec `json:"guard,omitempty"`
}

// GuardSpec declares one guardrail appended by the set-guard op.
type GuardSpec struct {
	// Kind selects the guardrail: "confidence", "rate-limit",
	// "subject-cap", or "dry-run".
	Kind string `json:"kind"`
	// Min is the confidence floor (kind "confidence").
	Min float64 `json:"min,omitempty"`
	// Max is the action budget (kinds "rate-limit" and "subject-cap").
	Max int `json:"max,omitempty"`
	// Window is the sliding rate-limit window (kind "rate-limit").
	Window Duration `json:"window,omitempty"`
	// Action filters subject-cap to one action kind; empty caps all.
	Action string `json:"action,omitempty"`
}

// WireAction is the lowercase wire form of a planned action.
type WireAction struct {
	Kind        string  `json:"kind"`
	Subject     string  `json:"subject"`
	Amount      float64 `json:"amount"`
	Confidence  float64 `json:"confidence"`
	Explanation string  `json:"explanation,omitempty"`
}

// wireAction converts a core action.
func wireAction(a core.Action) WireAction {
	return WireAction{
		Kind: a.Kind, Subject: a.Subject, Amount: a.Amount,
		Confidence: a.Confidence, Explanation: a.Explanation,
	}
}

// WireMetrics is the lowercase wire form of a loop's counters.
type WireMetrics struct {
	Ticks      int `json:"ticks"`
	Findings   int `json:"findings"`
	Planned    int `json:"planned"`
	Executed   int `json:"executed"`
	Honored    int `json:"honored"`
	Vetoed     int `json:"vetoed"`
	Arbitrated int `json:"arbitrated"`
	Deferred   int `json:"deferred"`
	Dropped    int `json:"dropped"`
	Denied     int `json:"denied"`
	Stale      int `json:"stale"`
	Errors     int `json:"errors"`
	// MeanDecisionLatency is DecisionLatency / Executed, as a duration
	// string.
	MeanDecisionLatency Duration `json:"mean_decision_latency,omitempty"`
}

// wireMetrics converts a core metrics snapshot.
func wireMetrics(m core.Metrics) WireMetrics {
	var mean time.Duration
	if m.ExecutedActions > 0 {
		mean = m.DecisionLatency / time.Duration(m.ExecutedActions)
	}
	return WireMetrics{
		Ticks: m.Ticks, Findings: m.Findings, Planned: m.PlannedActions,
		Executed: m.ExecutedActions, Honored: m.HonoredActions,
		Vetoed: m.VetoedActions, Arbitrated: m.ArbitratedActions,
		Deferred: m.DeferredActions, Dropped: m.DroppedActions,
		Denied: m.DeniedActions, Stale: m.StaleDeferred, Errors: m.Errors,
		MeanDecisionLatency: Duration(mean),
	}
}

// MemberInfo is one worker process in a cluster coordinator's directory —
// the payload of the members op (additive within control.v1).
type MemberInfo struct {
	ID    string `json:"id"`
	State string `json:"state"` // "alive" or "expired"
	// Loops is how many loop groups are currently placed on the member.
	Loops int `json:"loops"`
	// Series, Samples, and Rounds mirror the member's last heartbeat stats.
	Series  int    `json:"series,omitempty"`
	Samples uint64 `json:"samples,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	// LastBeatMS is how many wall milliseconds ago the last heartbeat (or
	// hello) arrived.
	LastBeatMS int64 `json:"last_beat_ms"`
}

// PlacementInfo reports where a cluster coordinator placed one spawned spec
// (additive within control.v1): the group name, the worker that owns it, and
// the placement state ("pending" until a worker is available, "assigned"
// while the assign is in flight, "placed" after the worker's ack).
type PlacementInfo struct {
	Group  string `json:"group"`
	Case   string `json:"case"`
	Worker string `json:"worker,omitempty"`
	State  string `json:"state"`
}

// LoopStatus is one managed loop's reported state.
type LoopStatus struct {
	Name string `json:"name"`
	Case string `json:"case"`
	// Group is the spec's primary loop name; multi-loop cases (ioqos)
	// report each loop under the same group.
	Group string `json:"group,omitempty"`
	// Worker names the cluster worker serving the loop; empty in a
	// single-process deployment.
	Worker     string      `json:"worker,omitempty"`
	State      string      `json:"state"`
	Mode       string      `json:"mode"`
	Priority   int         `json:"priority"`
	Period     Duration    `json:"period,omitempty"`
	Generation uint64      `json:"generation"`
	Guards     int         `json:"guards"`
	Pending    int         `json:"pending,omitempty"`
	Metrics    WireMetrics `json:"metrics"`
}

// CaseInfo describes one spawnable factory (the cases op).
type CaseInfo struct {
	Case     string          `json:"case"`
	Doc      string          `json:"doc,omitempty"`
	Requires []string        `json:"requires,omitempty"`
	Defaults json.RawMessage `json:"defaults,omitempty"`
	Priority int             `json:"priority"`
	Period   Duration        `json:"period,omitempty"`
}

// Reply is the payload of TopicReply envelopes. Exactly one of the result
// fields is set, matching the op; Error carries the failure text when OK is
// false.
type Reply struct {
	ID    string `json:"id,omitempty"`
	Op    string `json:"op"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Partial marks a cluster-merged reply that is missing at least one
	// worker's contribution: OK with the reachable workers' results, Error
	// naming the gaps. Single-process replies never set it.
	Partial bool          `json:"partial,omitempty"`
	Loops   []LoopStatus  `json:"loops,omitempty"`
	Loop    *LoopStatus   `json:"loop,omitempty"`
	Spec    *LoopSpec     `json:"spec,omitempty"`
	Cases   []CaseInfo    `json:"cases,omitempty"`
	Pending []PendingInfo `json:"pending,omitempty"`
	// Resolution acknowledges a verdict (outcome "queued"): the final
	// fate is published on TopicResolved when the next round applies it.
	Resolution *Resolution `json:"resolution,omitempty"`
	// Members answers the members op (cluster coordinators only).
	Members []MemberInfo `json:"members,omitempty"`
	// Placement reports where a cluster coordinator placed a spawned spec.
	Placement *PlacementInfo `json:"placement,omitempty"`
}

// PendingInfo is one queued human-in-the-loop action awaiting a verdict.
type PendingInfo struct {
	Seq  uint64 `json:"seq"`
	Loop string `json:"loop"`
	// Worker names the cluster worker holding the pending action; empty in
	// a single-process deployment. Cluster verdicts should carry the loop
	// name as a cross-check, since pending sequence numbers are per-worker.
	Worker string `json:"worker,omitempty"`
	// Decided is the virtual time the loop planned the action (the
	// decision-latency epoch).
	Decided Duration   `json:"decided"`
	Action  WireAction `json:"action"`
	// ContingencyAt, when nonzero, is the virtual time at which the
	// action executes anyway under the loop's contingency policy.
	ContingencyAt Duration `json:"contingency_at,omitempty"`
}

// Verdict is the payload of TopicApprove / TopicDeny envelopes. Verdicts
// are applied at the next control round; the final fate is published on
// TopicResolved.
type Verdict struct {
	ID     string `json:"id,omitempty"`
	Seq    uint64 `json:"seq"`
	Loop   string `json:"loop,omitempty"` // optional cross-check
	Reason string `json:"reason,omitempty"`
}

// Resolution outcomes.
const (
	OutcomeApproved    = "approved"    // operator approved; action executed
	OutcomeDenied      = "denied"      // operator denied; action dropped
	OutcomeStale       = "stale"       // lifecycle moved on; action invalidated
	OutcomeContingency = "contingency" // approval window elapsed; contingency executed
	OutcomeDropped     = "dropped"     // human absent, no contingency
	OutcomeQueued      = "queued"      // verdict accepted, applies at the next round
)

// Resolution is the payload of TopicResolved envelopes and the reply body
// for verdicts.
type Resolution struct {
	Seq      uint64 `json:"seq"`
	Loop     string `json:"loop"`
	Outcome  string `json:"outcome"`
	Executed bool   `json:"executed"`
	Reason   string `json:"reason,omitempty"`
}
