package control_test

import (
	"math/rand"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/fleet"
	"autoloop/internal/sim"
)

// persistService builds a service around a fresh script recorder, registry,
// and bus — the "same binary, new process" side of a recovery.
func persistService(t testing.TB) (*control.Service, *bus.Bus, *script) {
	t.Helper()
	s := &script{}
	reg := control.NewRegistry()
	reg.MustRegister(scriptFactory("script", s))
	engine := sim.NewEngine(1)
	b := bus.New()
	env := &control.Env{Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(1)), Bus: b}
	svc := control.NewService(reg, env, fleet.New(1), time.Minute).Attach(b, "test")
	t.Cleanup(svc.Close)
	return svc, b, s
}

// TestControlSnapshotRestore drives a service through spawns, a mode change,
// a guard, a pause, and human-in-the-loop deferrals, snapshots it, restores
// into a fresh service, and requires (a) an identical re-snapshot and (b)
// that a restored pending approval executes live through the re-spawned loop.
func TestControlSnapshotRestore(t *testing.T) {
	svc1, b1, s1 := persistService(t)

	r := call(t, b1, control.Request{ID: "1", Op: control.OpSpawn,
		Spec: &control.LoopSpec{Case: "script", Name: "alpha", Mode: "human-in-the-loop"}})
	if !r.OK {
		t.Fatalf("spawn alpha: %+v", r)
	}
	if r = call(t, b1, control.Request{ID: "2", Op: control.OpSpawn,
		Spec: &control.LoopSpec{Case: "script", Name: "beta"}}); !r.OK {
		t.Fatalf("spawn beta: %+v", r)
	}
	if r = call(t, b1, control.Request{ID: "3", Op: control.OpSetGuard, Loop: "beta",
		Guard: &control.GuardSpec{Kind: "rate-limit", Max: 3, Window: control.Duration(10 * time.Minute)}}); !r.OK {
		t.Fatalf("set-guard: %+v", r)
	}
	// Two ticks: alpha (human-in-the-loop) defers two actions into the
	// pending queue; beta executes autonomously.
	svc1.Tick(1 * time.Minute)
	svc1.Tick(2 * time.Minute)
	if r = call(t, b1, control.Request{ID: "4", Op: control.OpPending}); !r.OK || len(r.Pending) != 2 {
		t.Fatalf("pending before crash: %+v", r)
	}
	if r = call(t, b1, control.Request{ID: "5", Op: control.OpPause, Loop: "beta"}); !r.OK {
		t.Fatalf("pause beta: %+v", r)
	}

	snap, err := svc1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// "Restart": a fresh service over the same registry shape.
	svc2, b2, s2 := persistService(t)
	if err := svc2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	again, err := svc2.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if string(snap) != string(again) {
		t.Fatalf("restored snapshot diverges:\n before: %s\n after:  %s", snap, again)
	}

	// The restored pending approvals are live: list them, approve the first,
	// and require execution through the re-spawned loop's executor.
	r = call(t, b2, control.Request{ID: "6", Op: control.OpPending})
	if !r.OK || len(r.Pending) != 2 || r.Pending[0].Loop != "alpha" {
		t.Fatalf("pending after restore: %+v", r)
	}
	if r = call(t, b2, control.Request{ID: "7", Op: control.OpGet, Loop: "beta"}); !r.OK || r.Loop.State != "paused" {
		t.Fatalf("beta after restore: %+v", r.Loop)
	}
	if r.Loop.Guards != 1 {
		t.Fatalf("beta guards after restore = %d, want 1", r.Loop.Guards)
	}

	pr := call(t, b2, control.Request{ID: "8", Op: control.OpPending})
	b2.Publish(bus.Envelope{Topic: control.TopicApprove, Time: 3 * time.Minute,
		Payload: control.Verdict{ID: "9", Seq: pr.Pending[0].Seq}})
	before := len(s2.executed)
	svc2.Tick(3 * time.Minute)
	// Exactly one new execution: the approved deferred action fires through
	// the re-spawned alpha; alpha's tick-3 plan defers again (human-in-the-
	// loop) and beta is paused.
	if len(s2.executed) != before+1 {
		t.Fatalf("executed %d -> %d after approval, want +1", before, len(s2.executed))
	}
	if len(s1.executed) == 0 {
		t.Fatal("sanity: original beta never executed")
	}
}

// TestControlRestorePendingStaleOnPausedLoop checks the lifecycle contract
// survives recovery: a pending action whose loop was snapshotted paused
// settles as stale after restore, never executing.
func TestControlRestorePendingStaleOnPausedLoop(t *testing.T) {
	svc1, b1, _ := persistService(t)
	if r := call(t, b1, control.Request{ID: "1", Op: control.OpSpawn,
		Spec: &control.LoopSpec{Case: "script", Name: "alpha", Mode: "human-in-the-loop"}}); !r.OK {
		t.Fatalf("spawn: %+v", r)
	}
	svc1.Tick(1 * time.Minute)
	if r := call(t, b1, control.Request{ID: "2", Op: control.OpPause, Loop: "alpha"}); !r.OK {
		t.Fatalf("pause: %+v", r)
	}
	snap, err := svc1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	svc2, b2, s2 := persistService(t)
	if err := svc2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	pr := call(t, b2, control.Request{ID: "3", Op: control.OpPending})
	if !pr.OK || len(pr.Pending) != 1 {
		t.Fatalf("pending after restore: %+v", pr)
	}
	b2.Publish(bus.Envelope{Topic: control.TopicApprove, Time: 2 * time.Minute,
		Payload: control.Verdict{ID: "4", Seq: pr.Pending[0].Seq}})
	svc2.Tick(2 * time.Minute)
	if len(s2.executed) != 0 {
		t.Fatal("stale deferred action executed after restore")
	}
	if pr = call(t, b2, control.Request{ID: "5", Op: control.OpPending}); len(pr.Pending) != 0 {
		t.Fatalf("stale entry still queued: %+v", pr.Pending)
	}
}
