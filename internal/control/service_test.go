package control_test

import (
	"bufio"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/fleet"
	"autoloop/internal/sim"
)

// script is a capability-free test case: every tick plans one action on the
// configured subject and records what executes.
type script struct{ executed []core.Action }

// scriptFactory registers the script case under the given name.
func scriptFactory(name string, s *script) control.CaseFactory {
	type cfg struct{ Subject string }
	return control.CaseFactory{
		Name:     name,
		Doc:      "test: plans one action per tick",
		Defaults: func() interface{} { return &cfg{Subject: "s1"} },
		Priority: 1,
		Build: func(env *control.Env, c interface{}) ([]control.BuiltLoop, error) {
			subject := c.(*cfg).Subject
			l := core.NewLoop(name,
				core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
					return core.Observation{Time: now}, nil
				}),
				core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
					return core.Symptoms{Time: now, Findings: []core.Finding{{Kind: "f", Subject: subject, Confidence: 1}}}, nil
				}),
				core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
					return core.Plan{Time: now, Actions: []core.Action{{Kind: "act", Subject: subject, Amount: 1, Confidence: 1}}}, nil
				}),
				core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
					s.executed = append(s.executed, a)
					return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
				}),
			)
			return []control.BuiltLoop{{Loop: l}}, nil
		},
	}
}

// scriptService wires a service around one script case on an in-process bus.
func scriptService(t testing.TB) (*control.Service, *bus.Bus, *script) {
	t.Helper()
	s := &script{}
	reg := control.NewRegistry()
	reg.MustRegister(scriptFactory("script", s))
	engine := sim.NewEngine(1)
	b := bus.New()
	env := &control.Env{Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(1)), Bus: b}
	svc := control.NewService(reg, env, fleet.New(1), time.Minute).Attach(b, "test")
	t.Cleanup(svc.Close)
	return svc, b, s
}

// call performs one control.v1 request over the bus.
func call(t testing.TB, b *bus.Bus, req control.Request) control.Reply {
	t.Helper()
	env, err := bus.Call(b,
		bus.Envelope{Topic: control.TopicRequest, Payload: req},
		control.TopicReply,
		func(e bus.Envelope) bool {
			var r control.Reply
			return bus.DecodePayload(e, &r) == nil && r.ID == req.ID
		}, time.Second)
	if err != nil {
		t.Fatalf("call %s: %v", req.Op, err)
	}
	var r control.Reply
	if err := bus.DecodePayload(env, &r); err != nil {
		t.Fatalf("call %s: %v", req.Op, err)
	}
	return r
}

func TestServiceLifecycleOpsOverBus(t *testing.T) {
	svc, b, s := scriptService(t)

	r := call(t, b, control.Request{ID: "1", Op: control.OpSpawn, Spec: &control.LoopSpec{Case: "script"}})
	if !r.OK || r.Loop == nil || r.Loop.Name != "script" || r.Loop.State != "created" {
		t.Fatalf("spawn reply = %+v", r)
	}
	svc.Tick(1 * time.Minute)
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 2 {
		t.Fatalf("executed %d, want 2", len(s.executed))
	}

	if r = call(t, b, control.Request{ID: "2", Op: control.OpList}); !r.OK || len(r.Loops) != 1 || r.Loops[0].State != "running" {
		t.Fatalf("list reply = %+v", r)
	}
	if r.Loops[0].Metrics.Executed != 2 {
		t.Fatalf("metrics over the wire = %+v", r.Loops[0].Metrics)
	}

	if r = call(t, b, control.Request{ID: "3", Op: control.OpPause, Loop: "script"}); !r.OK || r.Loop.State != "paused" {
		t.Fatalf("pause reply = %+v", r)
	}
	svc.Tick(3 * time.Minute)
	if len(s.executed) != 2 {
		t.Fatal("paused loop executed")
	}
	if r = call(t, b, control.Request{ID: "4", Op: control.OpResume, Loop: "script"}); !r.OK || r.Loop.State != "running" {
		t.Fatalf("resume reply = %+v", r)
	}
	svc.Tick(4 * time.Minute)
	if len(s.executed) != 3 {
		t.Fatal("resumed loop did not execute")
	}

	// A dry-run guard turns the loop into an advisor.
	if r = call(t, b, control.Request{ID: "5", Op: control.OpSetGuard, Loop: "script", Guard: &control.GuardSpec{Kind: "dry-run"}}); !r.OK || r.Loop.Guards != 1 {
		t.Fatalf("set-guard reply = %+v", r)
	}
	svc.Tick(5 * time.Minute)
	if len(s.executed) != 3 {
		t.Fatal("dry-run guard did not veto")
	}

	// get reports the normalized spec.
	r = call(t, b, control.Request{ID: "6", Op: control.OpGet, Loop: "script"})
	if !r.OK || r.Spec == nil || r.Spec.Case != "script" || r.Spec.Mode != "autonomous" {
		t.Fatalf("get reply spec = %+v", r.Spec)
	}

	// drain: gone from fleet within a round, then unknown.
	if r = call(t, b, control.Request{ID: "7", Op: control.OpDrain, Loop: "script"}); !r.OK || r.Loop.State != "draining" {
		t.Fatalf("drain reply = %+v", r)
	}
	svc.Tick(6 * time.Minute)
	if r = call(t, b, control.Request{ID: "8", Op: control.OpGet, Loop: "script"}); r.OK {
		t.Fatalf("drained loop still managed: %+v", r)
	}
	if svc.Coordinator().Len() != 0 {
		t.Fatal("drained loop still in the fleet")
	}
}

func TestServiceCasesOp(t *testing.T) {
	_, b, _ := scriptService(t)
	r := call(t, b, control.Request{ID: "c", Op: control.OpCases})
	if !r.OK || len(r.Cases) != 1 || r.Cases[0].Case != "script" {
		t.Fatalf("cases reply = %+v", r)
	}
	if !strings.Contains(string(r.Cases[0].Defaults), "s1") {
		t.Fatalf("defaults schema = %s", r.Cases[0].Defaults)
	}
}

// approvalSetup spawns a human-in-the-loop script case and collects the
// pending and resolved envelopes from the bus.
func approvalSetup(t *testing.T) (*control.Service, *bus.Bus, *script, *[]control.PendingInfo, *[]control.Resolution) {
	svc, b, s := scriptService(t)
	var pendings []control.PendingInfo
	var resolutions []control.Resolution
	t.Cleanup(b.Subscribe(control.TopicPending, func(env bus.Envelope) {
		var p control.PendingInfo
		if bus.DecodePayload(env, &p) == nil {
			pendings = append(pendings, p)
		}
	}))
	t.Cleanup(b.Subscribe(control.TopicResolved, func(env bus.Envelope) {
		var r control.Resolution
		if bus.DecodePayload(env, &r) == nil {
			resolutions = append(resolutions, r)
		}
	}))
	r := call(t, b, control.Request{ID: "s", Op: control.OpSpawn, Spec: &control.LoopSpec{
		Case: "script", Mode: "human-in-the-loop",
	}})
	if !r.OK {
		t.Fatalf("spawn: %+v", r)
	}
	return svc, b, s, &pendings, &resolutions
}

func TestApprovalApproveExecutesNextRound(t *testing.T) {
	svc, b, s, pendings, resolutions := approvalSetup(t)
	svc.Tick(1 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("deferred action executed without approval")
	}
	if len(*pendings) != 1 {
		t.Fatalf("pending announcements = %d, want 1", len(*pendings))
	}
	p := (*pendings)[0]
	if p.Loop != "script" || p.Action.Kind != "act" || p.Seq != 1 {
		t.Fatalf("pending = %+v", p)
	}
	if r := call(t, b, control.Request{ID: "p", Op: control.OpPending}); !r.OK || len(r.Pending) != 1 {
		t.Fatalf("pending op = %+v", r)
	}

	// Approve over the bus: acknowledged as queued, executed on the next
	// round with decision latency from the deferral epoch.
	env, err := bus.Call(b,
		bus.Envelope{Topic: control.TopicApprove, Payload: control.Verdict{ID: "v", Seq: p.Seq, Reason: "ok"}},
		control.TopicReply, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var ack control.Reply
	if err := bus.DecodePayload(env, &ack); err != nil || !ack.OK || ack.Resolution.Outcome != control.OutcomeQueued {
		t.Fatalf("ack = %+v, %v", ack, err)
	}
	svc.Tick(5 * time.Minute)
	if len(s.executed) != 1 {
		t.Fatalf("executed %d after approval, want 1 (plus a fresh deferral)", len(s.executed))
	}
	if len(*resolutions) != 1 || (*resolutions)[0].Outcome != control.OutcomeApproved || !(*resolutions)[0].Executed {
		t.Fatalf("resolutions = %+v", *resolutions)
	}
	// The tick that applied the approval also planned (and deferred) a new
	// action.
	if len(*pendings) != 2 {
		t.Fatalf("pending announcements = %d, want 2", len(*pendings))
	}
}

func TestApprovalDenyAndUnknownSeq(t *testing.T) {
	svc, b, s, pendings, resolutions := approvalSetup(t)
	svc.Tick(1 * time.Minute)
	p := (*pendings)[0]
	env, err := bus.Call(b,
		bus.Envelope{Topic: control.TopicDeny, Payload: control.Verdict{ID: "v", Seq: p.Seq, Reason: "too risky"}},
		control.TopicReply, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var ack control.Reply
	if err := bus.DecodePayload(env, &ack); err != nil || !ack.OK {
		t.Fatalf("deny ack = %+v, %v", ack, err)
	}
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("denied action executed")
	}
	if len(*resolutions) != 1 || (*resolutions)[0].Outcome != control.OutcomeDenied {
		t.Fatalf("resolutions = %+v", *resolutions)
	}

	// Unknown sequence numbers are rejected in the ack.
	env, err = bus.Call(b,
		bus.Envelope{Topic: control.TopicApprove, Payload: control.Verdict{ID: "x", Seq: 999}},
		control.TopicReply, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.DecodePayload(env, &ack); err != nil || ack.OK {
		t.Fatalf("unknown-seq ack = %+v, %v", ack, err)
	}
}

func TestApprovalLoopCrossCheckRejectedInAck(t *testing.T) {
	svc, b, s, pendings, resolutions := approvalSetup(t)
	svc.Tick(1 * time.Minute)
	p := (*pendings)[0]
	env, err := bus.Call(b,
		bus.Envelope{Topic: control.TopicApprove, Payload: control.Verdict{ID: "v", Seq: p.Seq, Loop: "wrong-loop"}},
		control.TopicReply, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var ack control.Reply
	if err := bus.DecodePayload(env, &ack); err != nil || ack.OK || !strings.Contains(ack.Error, "wrong-loop") {
		t.Fatalf("cross-check ack = %+v, %v (want immediate rejection, not a silent drop)", ack, err)
	}
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("mismatched verdict executed the action")
	}
	for _, r := range *resolutions {
		if r.Seq == p.Seq {
			t.Fatalf("rejected verdict produced a resolution: %+v", r)
		}
	}
	// The action is still pending, approvable with the right loop name.
	if r := call(t, b, control.Request{ID: "q", Op: control.OpPending}); len(r.Pending) == 0 {
		t.Fatal("entry vanished after a rejected verdict")
	}
}

func TestSimulatedHumanAbsentCountsDropped(t *testing.T) {
	svc, b, s, _, resolutions := scriptServiceWithHuman(t, &control.HumanSpec{
		Availability: 0.5, MedianLatency: control.Duration(time.Minute),
	})
	// An always-absent simulated operator with no contingency: every
	// deferred action is dropped, and the loop's counters must say
	// dropped — not denied — matching the core HumanModel fallback.
	svc.SimulateHuman(core.HumanModel{Availability: 0, Latency: sim.Constant{V: time.Minute}})
	svc.Tick(1 * time.Minute)
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("dropped action executed")
	}
	var dropped bool
	for _, r := range *resolutions {
		if r.Outcome == control.OutcomeDropped {
			dropped = true
		}
	}
	if !dropped {
		t.Fatalf("resolutions = %+v, want a dropped outcome", *resolutions)
	}
	r := call(t, b, control.Request{ID: "g", Op: control.OpGet, Loop: "script"})
	if m := r.Loop.Metrics; m.Dropped == 0 || m.Denied != 0 {
		t.Fatalf("metrics = %+v, want dropped counted and denied zero", m)
	}
}

func TestApprovalStaleAfterPause(t *testing.T) {
	svc, b, s, pendings, resolutions := approvalSetup(t)
	svc.Tick(1 * time.Minute)
	p := (*pendings)[0]
	if r := call(t, b, control.Request{ID: "p", Op: control.OpPause, Loop: "script"}); !r.OK {
		t.Fatalf("pause: %+v", r)
	}
	// Even an approval cannot revive an action invalidated by the pause.
	if _, err := bus.Call(b,
		bus.Envelope{Topic: control.TopicApprove, Payload: control.Verdict{ID: "v", Seq: p.Seq}},
		control.TopicReply, nil, time.Second); err != nil {
		t.Fatal(err)
	}
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("stale action executed")
	}
	if len(*resolutions) != 1 || (*resolutions)[0].Outcome != control.OutcomeStale {
		t.Fatalf("resolutions = %+v", *resolutions)
	}
	if r := call(t, b, control.Request{ID: "q", Op: control.OpPending}); len(r.Pending) != 0 {
		t.Fatalf("stale entry still pending: %+v", r.Pending)
	}
}

func TestApprovalContingencyTimeout(t *testing.T) {
	svc, b, s, pendings, resolutions := scriptServiceWithHuman(t, &control.HumanSpec{
		Availability: 0, MedianLatency: control.Duration(time.Minute),
		ContingencyAfter: control.Duration(10 * time.Minute),
	})
	svc.Tick(1 * time.Minute)
	if len(*pendings) != 1 || (*pendings)[0].ContingencyAt != control.Duration(11*time.Minute) {
		t.Fatalf("pending = %+v", *pendings)
	}
	svc.Tick(5 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("contingency fired early")
	}
	svc.Tick(11 * time.Minute)
	if len(s.executed) != 1 {
		t.Fatal("contingency did not fire")
	}
	var seen bool
	for _, r := range *resolutions {
		if r.Outcome == control.OutcomeContingency && r.Executed {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("resolutions = %+v, want a contingency execution", *resolutions)
	}
	_ = b
}

// scriptServiceWithHuman is approvalSetup with an explicit HumanSpec.
func scriptServiceWithHuman(t *testing.T, h *control.HumanSpec) (*control.Service, *bus.Bus, *script, *[]control.PendingInfo, *[]control.Resolution) {
	svc, b, s := scriptService(t)
	var pendings []control.PendingInfo
	var resolutions []control.Resolution
	t.Cleanup(b.Subscribe(control.TopicPending, func(env bus.Envelope) {
		var p control.PendingInfo
		if bus.DecodePayload(env, &p) == nil {
			pendings = append(pendings, p)
		}
	}))
	t.Cleanup(b.Subscribe(control.TopicResolved, func(env bus.Envelope) {
		var r control.Resolution
		if bus.DecodePayload(env, &r) == nil {
			resolutions = append(resolutions, r)
		}
	}))
	r := call(t, b, control.Request{ID: "s", Op: control.OpSpawn, Spec: &control.LoopSpec{
		Case: "script", Mode: "human-in-the-loop", Human: h,
	}})
	if !r.OK {
		t.Fatalf("spawn: %+v", r)
	}
	return svc, b, s, &pendings, &resolutions
}

func TestSimulatedHumanDriver(t *testing.T) {
	svc, _, s, _, resolutions := scriptServiceWithHuman(t, nil)
	// An always-available simulated operator with a 3-minute constant
	// latency resolves the queue without any wire verdict.
	svc.SimulateHuman(core.HumanModel{Availability: 1, Latency: sim.Constant{V: 3 * time.Minute}})
	svc.Tick(1 * time.Minute) // defers, schedules auto-approval at 4m
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 0 {
		t.Fatal("simulated operator answered early")
	}
	svc.Tick(4 * time.Minute)
	if len(s.executed) != 1 {
		t.Fatalf("executed = %d, want the simulated approval", len(s.executed))
	}
	var approved bool
	for _, r := range *resolutions {
		if r.Outcome == control.OutcomeApproved && r.Reason == "simulated operator" {
			approved = true
		}
	}
	if !approved {
		t.Fatalf("resolutions = %+v", *resolutions)
	}
}

// TestControlSessionOverTCP is the acceptance round trip: a raw TCP client
// (what `nc` sees against cmd/modad) lists the fleet, pauses and resumes a
// loop, changes its mode, and approves a pending action — all as
// newline-delimited control.v1 envelopes across the bus bridge.
func TestControlSessionOverTCP(t *testing.T) {
	svc, b, s := scriptService(t)
	if _, err := svc.Spawn(control.LoopSpec{Case: "script"}); err != nil {
		t.Fatal(err)
	}
	srv, err := bus.NewServer("127.0.0.1:0", "control.*", b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	lines := make(chan bus.Envelope, 64)
	go func() {
		for sc.Scan() {
			if env, err := bus.Decode(sc.Bytes()); err == nil {
				lines <- env
			}
		}
		close(lines)
	}()
	wait := func(topic string, match func(bus.Envelope) bool) bus.Envelope {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case env, ok := <-lines:
				if !ok {
					t.Fatal("connection closed")
				}
				if env.Topic == topic && (match == nil || match(env)) {
					return env
				}
			case <-deadline:
				t.Fatalf("no %s envelope within 5s", topic)
			}
		}
	}
	send := func(topic string, payload interface{}) {
		t.Helper()
		data, err := bus.Encode(bus.Envelope{Topic: topic, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	reply := func(id string) control.Reply {
		t.Helper()
		env := wait(control.TopicReply, func(e bus.Envelope) bool {
			var r control.Reply
			return bus.DecodePayload(e, &r) == nil && r.ID == id
		})
		var r control.Reply
		if err := bus.DecodePayload(env, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	svc.Tick(1 * time.Minute)

	send(control.TopicRequest, control.Request{ID: "t1", Op: control.OpList})
	if r := reply("t1"); !r.OK || len(r.Loops) != 1 || r.Loops[0].Metrics.Executed != 1 {
		t.Fatalf("list over TCP = %+v", r)
	}

	send(control.TopicRequest, control.Request{ID: "t2", Op: control.OpPause, Loop: "script"})
	if r := reply("t2"); !r.OK || r.Loop.State != "paused" {
		t.Fatalf("pause over TCP = %+v", r)
	}
	svc.Tick(2 * time.Minute)
	if len(s.executed) != 1 {
		t.Fatal("paused loop executed")
	}

	send(control.TopicRequest, control.Request{ID: "t3", Op: control.OpResume, Loop: "script"})
	if r := reply("t3"); !r.OK || r.Loop.State != "running" {
		t.Fatalf("resume over TCP = %+v", r)
	}

	send(control.TopicRequest, control.Request{ID: "t4", Op: control.OpSetMode, Loop: "script", Mode: "human-in-the-loop"})
	if r := reply("t4"); !r.OK || r.Loop.Mode != "human-in-the-loop" {
		t.Fatalf("set-mode over TCP = %+v", r)
	}

	svc.Tick(3 * time.Minute) // defers and announces the pending action
	penv := wait(control.TopicPending, nil)
	var p control.PendingInfo
	if err := bus.DecodePayload(penv, &p); err != nil || p.Action.Kind != "act" {
		t.Fatalf("pending over TCP = %+v, %v", p, err)
	}

	send(control.TopicApprove, control.Verdict{ID: "t5", Seq: p.Seq, Reason: "go"})
	if r := reply("t5"); !r.OK || r.Resolution.Outcome != control.OutcomeQueued {
		t.Fatalf("approve ack over TCP = %+v", r)
	}
	svc.Tick(4 * time.Minute)
	renv := wait(control.TopicResolved, nil)
	var res control.Resolution
	if err := bus.DecodePayload(renv, &res); err != nil || res.Outcome != control.OutcomeApproved || !res.Executed {
		t.Fatalf("resolution over TCP = %+v, %v", res, err)
	}
	if len(s.executed) != 2 {
		t.Fatalf("executed = %d, want the approved action applied", len(s.executed))
	}
}
