package pfs

import (
	"testing"
	"time"

	"autoloop/internal/sim"
)

func newFS(osts int, stripe int) (*sim.Engine, *FS) {
	e := sim.NewEngine(1)
	cfg := Config{OSTs: osts, OSTBandwidthMBps: 100, DefaultStripeCount: stripe}
	return e, New(e, cfg)
}

func TestNewZeroOSTsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(sim.NewEngine(1), Config{})
}

func TestWriteLatencySingleStripe(t *testing.T) {
	e, fs := newFS(4, 1)
	f := fs.Open("a", 1, nil)
	var lat time.Duration
	fs.Write(f, 100, func(l time.Duration) { lat = l }) // 100MB at 100MB/s = 1s
	e.Run()
	if lat != time.Second {
		t.Errorf("latency = %v, want 1s", lat)
	}
}

func TestStripingSplitsLoad(t *testing.T) {
	e, fs := newFS(4, 4)
	f := fs.Open("a", 4, nil)
	var lat time.Duration
	fs.Write(f, 100, func(l time.Duration) { lat = l }) // 25MB per OST = 0.25s
	e.Run()
	if lat != 250*time.Millisecond {
		t.Errorf("latency = %v, want 250ms", lat)
	}
	for _, id := range f.OSTs() {
		if got := fs.TotalBytesMB(id); got != 25 {
			t.Errorf("OST %d bytes = %v, want 25", id, got)
		}
	}
}

func TestFIFOQueueing(t *testing.T) {
	e, fs := newFS(1, 1)
	f := fs.Open("a", 1, nil)
	var lats []time.Duration
	fs.Write(f, 100, func(l time.Duration) { lats = append(lats, l) })
	fs.Write(f, 100, func(l time.Duration) { lats = append(lats, l) })
	e.Run()
	if len(lats) != 2 {
		t.Fatalf("got %d completions", len(lats))
	}
	if lats[0] != time.Second || lats[1] != 2*time.Second {
		t.Errorf("lats = %v, want [1s 2s]", lats)
	}
}

func TestDegradedOSTSlowsStripedWrite(t *testing.T) {
	e, fs := newFS(4, 4)
	if err := fs.SetOSTHealth(2, 0.1); err != nil {
		t.Fatal(err)
	}
	f := fs.Open("a", 4, nil)
	var lat time.Duration
	fs.Write(f, 100, func(l time.Duration) { lat = l })
	e.Run()
	// Healthy stripes take 0.25s; degraded takes 2.5s; write completes at max.
	if lat != 2500*time.Millisecond {
		t.Errorf("latency = %v, want 2.5s", lat)
	}
	if fs.OSTHealth(2) != 0.1 {
		t.Errorf("health = %v", fs.OSTHealth(2))
	}
}

func TestSetOSTHealthValidation(t *testing.T) {
	_, fs := newFS(2, 1)
	if err := fs.SetOSTHealth(9, 0.5); err == nil {
		t.Error("expected error for unknown OST")
	}
	_ = fs.SetOSTHealth(0, -1)
	if h := fs.OSTHealth(0); h != 0.01 {
		t.Errorf("negative health clamped to %v, want 0.01", h)
	}
	_ = fs.SetOSTHealth(0, 5)
	if h := fs.OSTHealth(0); h != 1 {
		t.Errorf("excess health clamped to %v, want 1", h)
	}
	if fs.OSTHealth(-1) != 0 {
		t.Error("out-of-range health should be 0")
	}
}

func TestOpenAvoidsOSTs(t *testing.T) {
	_, fs := newFS(4, 2)
	avoid := map[int]bool{1: true, 3: true}
	for i := 0; i < 5; i++ {
		f := fs.Open("a", 2, avoid)
		for _, id := range f.OSTs() {
			if avoid[id] {
				t.Fatalf("layout %v includes avoided OST %d", f.OSTs(), id)
			}
		}
	}
}

func TestOpenAvoidAllIgnored(t *testing.T) {
	_, fs := newFS(2, 2)
	f := fs.Open("a", 2, map[int]bool{0: true, 1: true})
	if len(f.OSTs()) != 2 {
		t.Errorf("layout = %v, want all OSTs when avoid covers everything", f.OSTs())
	}
}

func TestOpenStripeCountClamped(t *testing.T) {
	_, fs := newFS(4, 2)
	f := fs.Open("a", 100, nil)
	if len(f.OSTs()) != 4 {
		t.Errorf("stripe count = %d, want clamped 4", len(f.OSTs()))
	}
	f2 := fs.Open("a", 0, nil)
	if len(f2.OSTs()) != 2 {
		t.Errorf("default stripe count = %d, want 2", len(f2.OSTs()))
	}
}

func TestWriteClosedFilePanics(t *testing.T) {
	_, fs := newFS(2, 1)
	f := fs.Open("a", 1, nil)
	fs.Close(f)
	defer func() {
		if recover() == nil {
			t.Error("expected panic writing closed file")
		}
	}()
	fs.Write(f, 1, nil)
}

func TestWriteZeroSizeCompletesImmediately(t *testing.T) {
	_, fs := newFS(2, 1)
	f := fs.Open("a", 1, nil)
	called := false
	fs.Write(f, 0, func(l time.Duration) { called = true })
	if !called {
		t.Error("zero-size write must complete synchronously")
	}
}

func TestQoSThrottling(t *testing.T) {
	e, fs := newFS(4, 1)
	fs.SetQoS("slow", 10, 10) // 10 MB/s, 10 MB burst
	f := fs.Open("slow", 1, nil)
	var lats []time.Duration
	// First 10MB rides the burst; second must wait for tokens.
	fs.Write(f, 10, func(l time.Duration) { lats = append(lats, l) })
	fs.Write(f, 10, func(l time.Duration) { lats = append(lats, l) })
	e.Run()
	if len(lats) != 2 {
		t.Fatalf("got %d completions", len(lats))
	}
	// First: no throttle, service 10MB/100MBps = 0.1s.
	if lats[0] != 100*time.Millisecond {
		t.Errorf("first latency = %v, want 100ms", lats[0])
	}
	// Second: throttled 1s for tokens, then service.
	if lats[1] < time.Second {
		t.Errorf("second latency = %v, want >= 1s throttle", lats[1])
	}
}

func TestQoSUpdateAndRemove(t *testing.T) {
	_, fs := newFS(2, 1)
	fs.SetQoS("t", 50, 100)
	r, b, ok := fs.QoS("t")
	if !ok || r != 50 || b != 100 {
		t.Errorf("QoS = %v %v %v", r, b, ok)
	}
	fs.SetQoS("t", 20, 40)
	r, b, _ = fs.QoS("t")
	if r != 20 || b != 40 {
		t.Errorf("updated QoS = %v %v", r, b)
	}
	fs.SetQoS("t", 0, 0)
	if _, _, ok := fs.QoS("t"); ok {
		t.Error("QoS should be removed")
	}
}

func TestQoSUnlimitedTenantUnaffected(t *testing.T) {
	e, fs := newFS(4, 1)
	fs.SetQoS("limited", 1, 1)
	f := fs.Open("free", 1, nil)
	var lat time.Duration
	fs.Write(f, 100, func(l time.Duration) { lat = l })
	e.Run()
	if lat != time.Second {
		t.Errorf("unlimited tenant latency = %v, want 1s", lat)
	}
}

func TestCollectorThroughputAndReset(t *testing.T) {
	e, fs := newFS(2, 1)
	col := fs.Collector()
	f := fs.Open("a", 1, nil)
	fs.Write(f, 100, nil) // 1s service on one OST
	e.RunUntil(10 * time.Second)
	pts := col.Collect(e.Now())
	var mbps, tenantMBps float64
	for _, p := range pts {
		if p.Name == "pfs.ost.mbps" && p.Value > 0 {
			mbps = p.Value
		}
		if p.Name == "pfs.tenant.mbps" {
			tenantMBps = p.Value
		}
	}
	if mbps != 10 { // 100MB over a 10s window
		t.Errorf("ost mbps = %v, want 10", mbps)
	}
	if tenantMBps != 10 {
		t.Errorf("tenant mbps = %v, want 10", tenantMBps)
	}
	// Window resets: immediate re-collect at a later instant shows zero.
	e.RunUntil(20 * time.Second)
	pts = col.Collect(e.Now())
	for _, p := range pts {
		if p.Name == "pfs.ost.mbps" && p.Value != 0 {
			t.Errorf("window did not reset: %v", p)
		}
		if p.Name == "pfs.tenant.mbps" {
			t.Error("tenant with no traffic must not report")
		}
	}
}

func TestCollectorLatency(t *testing.T) {
	e, fs := newFS(1, 1)
	col := fs.Collector()
	f := fs.Open("a", 1, nil)
	fs.Write(f, 100, nil) // 1s
	e.Run()
	pts := col.Collect(e.Now())
	for _, p := range pts {
		if p.Name == "pfs.ost.lat_ms" && p.Value != 1000 {
			t.Errorf("lat_ms = %v, want 1000", p.Value)
		}
	}
}

func TestQueueLen(t *testing.T) {
	e, fs := newFS(1, 1)
	f := fs.Open("a", 1, nil)
	fs.Write(f, 100, nil)
	fs.Write(f, 100, nil)
	if got := fs.QueueLen(0); got != 2 {
		t.Errorf("QueueLen = %d, want 2", got)
	}
	e.Run()
	if got := fs.QueueLen(0); got != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", got)
	}
	if fs.QueueLen(99) != 0 {
		t.Error("unknown OST QueueLen should be 0")
	}
}

func TestRoundRobinSpreadsLayouts(t *testing.T) {
	_, fs := newFS(8, 2)
	used := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, id := range fs.Open("a", 2, nil).OSTs() {
			used[id] = true
		}
	}
	if len(used) != 8 {
		t.Errorf("round robin used %d distinct OSTs over 4 opens, want 8", len(used))
	}
}
