// Package pfs models a Lustre-like parallel filesystem: object storage
// targets (OSTs) with FIFO service queues, files striped across OSTs,
// per-tenant token-bucket QoS actuators, and degradation injection.
//
// The model serves three of the paper's use cases directly. The OST case
// needs observable per-OST write performance plus a "close files using a
// poorly performing OST and reopen them using different OSTs" actuator; the
// I/O QoS case needs adjustable QoS parameters whose settings change
// interference and tail latency; and the holistic Fig. 1 pipeline needs the
// system-software sensor domain.
//
// Service model: each OST serializes requests FIFO at an effective bandwidth
// of capacity x health. A striped write splits evenly across the file's OSTs
// and completes when the slowest stripe chunk completes, so one degraded OST
// drags the whole write — exactly the pathology the OST use case responds to.
package pfs

import (
	"fmt"
	"sort"
	"time"

	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// Config parameterizes the filesystem.
type Config struct {
	OSTs               int
	OSTBandwidthMBps   float64
	DefaultStripeCount int
}

// DefaultConfig returns 16 OSTs at 500 MB/s with 4-way striping.
func DefaultConfig() Config {
	return Config{OSTs: 16, OSTBandwidthMBps: 500, DefaultStripeCount: 4}
}

// ost is one object storage target.
type ost struct {
	id        int
	capacity  float64 // MB/s at health 1.0
	health    float64 // bandwidth multiplier in (0,1]
	busyUntil time.Duration
	queueLen  int

	// window counters drained by the collector
	windowBytesMB  float64
	windowBusy     time.Duration
	windowLatSum   time.Duration
	windowLatCount int

	totalBytesMB float64
}

// File is an open striped file; its layout is fixed at open time.
type File struct {
	ID     int
	Tenant string
	osts   []int
	closed bool
}

// OSTs returns the stripe layout (OST indices) of the file.
func (f *File) OSTs() []int { return append([]int(nil), f.osts...) }

// bucket is a GCRA-style token bucket: tokens may go negative, which
// naturally serializes queued requests behind the deficit.
type bucket struct {
	rateMBps float64
	burstMB  float64
	tokens   float64
	last     time.Duration
}

func (b *bucket) refill(now time.Duration) {
	if b.rateMBps <= 0 {
		return
	}
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens += b.rateMBps * dt
		if b.tokens > b.burstMB {
			b.tokens = b.burstMB
		}
	}
	b.last = now
}

// reserve consumes sizeMB of tokens and returns how long the caller must wait
// before dispatch.
func (b *bucket) reserve(now time.Duration, sizeMB float64) time.Duration {
	if b.rateMBps <= 0 {
		return 0 // unlimited
	}
	b.refill(now)
	b.tokens -= sizeMB
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rateMBps * float64(time.Second))
}

// FS is the filesystem.
type FS struct {
	cfg     Config
	engine  *sim.Engine
	osts    []*ost
	buckets map[string]*bucket
	nextFID int
	nextRR  int // round-robin cursor for stripe placement

	lastCollect time.Duration

	// tenant window counters
	tenantWindowMB map[string]float64
	tenantLatSum   map[string]time.Duration
	tenantLatCount map[string]int
}

// New builds a filesystem attached to engine.
func New(engine *sim.Engine, cfg Config) *FS {
	if cfg.OSTs <= 0 {
		panic("pfs: config requires at least one OST")
	}
	if cfg.DefaultStripeCount <= 0 || cfg.DefaultStripeCount > cfg.OSTs {
		cfg.DefaultStripeCount = cfg.OSTs
	}
	fs := &FS{
		cfg:            cfg,
		engine:         engine,
		buckets:        make(map[string]*bucket),
		tenantWindowMB: make(map[string]float64),
		tenantLatSum:   make(map[string]time.Duration),
		tenantLatCount: make(map[string]int),
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, &ost{id: i, capacity: cfg.OSTBandwidthMBps, health: 1})
	}
	return fs
}

// Config returns the filesystem configuration.
func (fs *FS) Config() Config { return fs.cfg }

// NumOSTs returns the OST count.
func (fs *FS) NumOSTs() int { return len(fs.osts) }

// SetOSTHealth sets the bandwidth multiplier of OST id; 1 is healthy, 0.1
// means 10x slower. Values are clamped to (0, 1].
func (fs *FS) SetOSTHealth(id int, health float64) error {
	if id < 0 || id >= len(fs.osts) {
		return fmt.Errorf("pfs: unknown OST %d", id)
	}
	if health <= 0 {
		health = 0.01
	}
	if health > 1 {
		health = 1
	}
	fs.osts[id].health = health
	return nil
}

// OSTHealth returns OST id's current health factor.
func (fs *FS) OSTHealth(id int) float64 {
	if id < 0 || id >= len(fs.osts) {
		return 0
	}
	return fs.osts[id].health
}

// SetQoS installs or updates tenant's token bucket (rate MB/s, burst MB).
// rate <= 0 removes any limit.
func (fs *FS) SetQoS(tenant string, rateMBps, burstMB float64) {
	if rateMBps <= 0 {
		delete(fs.buckets, tenant)
		return
	}
	b := fs.buckets[tenant]
	if b == nil {
		fs.buckets[tenant] = &bucket{rateMBps: rateMBps, burstMB: burstMB, tokens: burstMB, last: fs.engine.Now()}
		return
	}
	b.refill(fs.engine.Now())
	b.rateMBps = rateMBps
	b.burstMB = burstMB
	if b.tokens > burstMB {
		b.tokens = burstMB
	}
}

// QoS reports tenant's configured rate and burst, with ok=false if unlimited.
func (fs *FS) QoS(tenant string) (rateMBps, burstMB float64, ok bool) {
	b := fs.buckets[tenant]
	if b == nil {
		return 0, 0, false
	}
	return b.rateMBps, b.burstMB, true
}

// Open creates a file striped over stripeCount OSTs chosen round-robin,
// skipping any OST in avoid. stripeCount <= 0 uses the default. If avoid
// excludes every OST it is ignored.
func (fs *FS) Open(tenant string, stripeCount int, avoid map[int]bool) *File {
	if stripeCount <= 0 {
		stripeCount = fs.cfg.DefaultStripeCount
	}
	if stripeCount > len(fs.osts) {
		stripeCount = len(fs.osts)
	}
	eligible := make([]int, 0, len(fs.osts))
	for _, o := range fs.osts {
		if !avoid[o.id] {
			eligible = append(eligible, o.id)
		}
	}
	if len(eligible) == 0 { // avoiding everything is a misconfiguration; ignore it
		for _, o := range fs.osts {
			eligible = append(eligible, o.id)
		}
	}
	if stripeCount > len(eligible) {
		stripeCount = len(eligible)
	}
	layout := make([]int, 0, stripeCount)
	for i := 0; i < stripeCount; i++ {
		layout = append(layout, eligible[(fs.nextRR+i)%len(eligible)])
	}
	fs.nextRR = (fs.nextRR + stripeCount) % len(eligible)
	sort.Ints(layout)
	fs.nextFID++
	return &File{ID: fs.nextFID, Tenant: tenant, osts: layout}
}

// Close marks the file closed; subsequent writes panic. Closing is what the
// OST-avoidance response does before reopening with a new layout.
func (fs *FS) Close(f *File) { f.closed = true }

// Write issues a striped write of sizeMB through tenant QoS; done (optional)
// is invoked at completion with the end-to-end latency. Latency includes QoS
// throttle delay, OST queueing, and service time of the slowest stripe.
func (fs *FS) Write(f *File, sizeMB float64, done func(latency time.Duration)) {
	if f == nil || f.closed {
		panic("pfs: write on closed or nil file")
	}
	if sizeMB <= 0 {
		if done != nil {
			done(0)
		}
		return
	}
	now := fs.engine.Now()
	var throttle time.Duration
	if b := fs.buckets[f.Tenant]; b != nil {
		throttle = b.reserve(now, sizeMB)
	}
	dispatch := func() {
		fs.dispatch(f, sizeMB, now, done)
	}
	if throttle > 0 {
		fs.engine.After(throttle, dispatch)
	} else {
		dispatch()
	}
}

// dispatch splits the write across the file's OSTs and completes when the
// slowest chunk finishes. start is the original request time for latency
// accounting.
func (fs *FS) dispatch(f *File, sizeMB float64, start time.Duration, done func(time.Duration)) {
	now := fs.engine.Now()
	chunk := sizeMB / float64(len(f.osts))
	remaining := len(f.osts)
	var maxDone time.Duration
	for _, id := range f.osts {
		o := fs.osts[id]
		begin := now
		if o.busyUntil > begin {
			begin = o.busyUntil
		}
		service := time.Duration(chunk / (o.capacity * o.health) * float64(time.Second))
		finish := begin + service
		o.busyUntil = finish
		o.queueLen++
		o.windowBusy += service
		if finish > maxDone {
			maxDone = finish
		}
		id := id
		fs.engine.At(finish, func() {
			o := fs.osts[id]
			o.queueLen--
			o.windowBytesMB += chunk
			o.totalBytesMB += chunk
			lat := fs.engine.Now() - start
			o.windowLatSum += lat
			o.windowLatCount++
			remaining--
			if remaining == 0 {
				fs.tenantWindowMB[f.Tenant] += sizeMB
				total := fs.engine.Now() - start
				fs.tenantLatSum[f.Tenant] += total
				fs.tenantLatCount[f.Tenant]++
				if done != nil {
					done(total)
				}
			}
		})
	}
}

// TotalBytesMB reports cumulative MB written to OST id.
func (fs *FS) TotalBytesMB(id int) float64 {
	if id < 0 || id >= len(fs.osts) {
		return 0
	}
	return fs.osts[id].totalBytesMB
}

// QueueLen reports the current number of in-flight chunks on OST id.
func (fs *FS) QueueLen(id int) int {
	if id < 0 || id >= len(fs.osts) {
		return 0
	}
	return fs.osts[id].queueLen
}

// Collector exposes the filesystem sensor domain. Per OST:
// pfs.ost.mbps (window throughput), pfs.ost.queue, pfs.ost.busy_frac,
// pfs.ost.lat_ms (mean window write latency). Per tenant with traffic:
// pfs.tenant.mbps, pfs.tenant.lat_ms. Window counters reset on collection,
// so the collector must be sampled on a fixed cadence.
func (fs *FS) Collector() telemetry.Collector {
	return telemetry.CollectorFunc(func(now time.Duration) []telemetry.Point {
		interval := now - fs.lastCollect
		fs.lastCollect = now
		secs := interval.Seconds()
		var pts []telemetry.Point
		for _, o := range fs.osts {
			labels := telemetry.Labels{"ost": fmt.Sprintf("ost%02d", o.id)}
			mbps, busy := 0.0, 0.0
			if secs > 0 {
				mbps = o.windowBytesMB / secs
				busy = o.windowBusy.Seconds() / secs
				if busy > 1 {
					busy = 1
				}
			}
			latMS := 0.0
			if o.windowLatCount > 0 {
				latMS = o.windowLatSum.Seconds() * 1000 / float64(o.windowLatCount)
			}
			pts = append(pts,
				telemetry.Point{Name: "pfs.ost.mbps", Labels: labels, Time: now, Value: mbps},
				telemetry.Point{Name: "pfs.ost.queue", Labels: labels, Time: now, Value: float64(o.queueLen)},
				telemetry.Point{Name: "pfs.ost.busy_frac", Labels: labels, Time: now, Value: busy},
				telemetry.Point{Name: "pfs.ost.lat_ms", Labels: labels, Time: now, Value: latMS},
			)
			o.windowBytesMB, o.windowBusy, o.windowLatSum, o.windowLatCount = 0, 0, 0, 0
		}
		tenants := make([]string, 0, len(fs.tenantWindowMB))
		for tnt := range fs.tenantWindowMB {
			tenants = append(tenants, tnt)
		}
		sort.Strings(tenants)
		for _, tnt := range tenants {
			labels := telemetry.Labels{"tenant": tnt}
			mb := fs.tenantWindowMB[tnt]
			if secs > 0 {
				pts = append(pts, telemetry.Point{Name: "pfs.tenant.mbps", Labels: labels, Time: now, Value: mb / secs})
			}
			if n := fs.tenantLatCount[tnt]; n > 0 {
				pts = append(pts, telemetry.Point{
					Name: "pfs.tenant.lat_ms", Labels: labels, Time: now,
					Value: fs.tenantLatSum[tnt].Seconds() * 1000 / float64(n),
				})
			}
			delete(fs.tenantWindowMB, tnt)
			delete(fs.tenantLatSum, tnt)
			delete(fs.tenantLatCount, tnt)
		}
		return pts
	})
}
