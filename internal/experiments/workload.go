package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/schedcase"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

// schedScenario describes the shared workload for the Scheduler-case
// experiment family (EXP-F3, F3b, A1, A2, A3): a batch workload whose users
// mis-estimate walltime, on a cluster running the walltime-extension
// autonomy loop in a configurable mode.
type schedScenario struct {
	Seed  int64
	Nodes int
	Jobs  int
	// UnderestimateFrac is the fraction of users whose walltime request
	// falls short of the true runtime.
	UnderestimateFrac float64
	// PaddingFactor multiplies every walltime request (the "users just pad"
	// baseline uses 2.0).
	PaddingFactor float64
	// Oracle sets walltime to true runtime + 5% (the perfect-user baseline).
	Oracle bool

	// LoopEnabled turns the autonomy loop on.
	LoopEnabled bool
	LoopConfig  schedcase.Config
	LoopMode    core.Mode
	Human       core.HumanModel
	// ConfidenceGate adds a confidence guardrail at this threshold (>0).
	ConfidenceGate float64
	Policy         sched.ExtensionPolicy

	// MaxResubmits bounds how many times a killed job is resubmitted with a
	// 1.5x larger walltime request (user behavior after a kill).
	MaxResubmits int

	// Hard makes the applications much noisier and more often drifting, so
	// that live progress fits alone are unreliable and historical Knowledge
	// has real signal to add (used by the Knowledge ablation).
	Hard bool

	// WarmKB pre-populates the knowledge base by replaying the workload once.
	WarmKB *knowledge.Base
}

// defaultScenario returns the headline configuration: 32 nodes, 40% of
// users underestimating.
func defaultScenario(opt Options) schedScenario {
	jobs := 240
	if opt.Quick {
		jobs = 60
	}
	return schedScenario{
		Seed:              opt.Seed,
		Nodes:             32,
		Jobs:              jobs,
		UnderestimateFrac: 0.4,
		PaddingFactor:     1.0,
		LoopConfig:        schedcase.DefaultConfig(),
		Policy:            sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: true},
		MaxResubmits:      2,
	}
}

// schedOutcome aggregates the measurements the experiment family reports.
type schedOutcome struct {
	Submitted      int // original submissions (excluding resubmits)
	CompletedFirst int // completed without any resubmission
	CompletedAll   int // workload items eventually completed
	KilledWall     int
	Resubmits      int
	WastedNodeH    float64
	UsedNodeH      float64
	MeanWait       time.Duration
	Makespan       time.Duration
	BackfillStarts int

	ExtReq, ExtGranted, ExtPartial, ExtDenied int
	ExtGrantedTotal                           time.Duration
	UntakenBackfill                           time.Duration
	OverExtensionH                            float64 // granted-but-unused extension node-hours

	Assess knowledge.Effectiveness
	Loop   core.Metrics
	KB     *knowledge.Base

	// MeanDecisionLatency is DecisionLatency / ExecutedActions.
	MeanDecisionLatency time.Duration
}

// jobSpec pairs a generated application with its user-requested walltime.
type jobSpec struct {
	name     string
	spec     app.Spec
	nodes    int
	walltime time.Duration
	submitAt time.Duration
}

// generateJobs builds the workload deterministically from the seed. The mix
// follows the paper's motivation: iterative applications with noisy,
// sometimes drifting iteration times, whose users guess walltimes with
// asymmetric error.
func generateJobs(sc schedScenario) []jobSpec {
	rng := rand.New(rand.NewSource(sc.Seed))
	specs := make([]jobSpec, 0, sc.Jobs)
	var at time.Duration
	for i := 0; i < sc.Jobs; i++ {
		at += sim.Exponential{MeanV: 6 * time.Minute}.Sample(rng)
		iters := 40 + rng.Intn(160)
		iterMean := time.Duration(20+rng.Intn(70)) * time.Second
		cv := 0.15
		if sc.Hard {
			cv = 0.45
		}
		spec := app.Spec{
			Name:        fmt.Sprintf("app%03d", i),
			TotalIters:  iters,
			IterTime:    sim.LogNormal{MeanV: iterMean, CV: cv},
			MarkerEvery: 1,
		}
		// A third of the applications drift or shift phase, defeating naive
		// constant-rate forecasts (two thirds in the hard mix).
		mod := 6
		if sc.Hard {
			mod = 3
		}
		switch rng.Intn(mod) {
		case 0:
			spec.DriftPerIter = 0.002 + rng.Float64()*0.004
		case 1:
			spec.PhaseAt = iters / 2
			spec.PhaseFactor = 1.2 + rng.Float64()*0.5
		}
		trueRuntime := expectedRuntime(spec)
		var factor float64
		if rng.Float64() < sc.UnderestimateFrac {
			factor = 0.55 + rng.Float64()*0.4 // 0.55..0.95: underestimated
		} else {
			factor = 1.1 + rng.Float64()*0.9 // 1.1..2.0: safe
		}
		wall := time.Duration(float64(trueRuntime) * factor * sc.PaddingFactor)
		if sc.Oracle {
			wall = time.Duration(float64(trueRuntime) * 1.05)
		}
		if wall < 10*time.Minute {
			wall = 10 * time.Minute
		}
		specs = append(specs, jobSpec{
			name:     spec.Name,
			spec:     spec,
			nodes:    1 + rng.Intn(4),
			walltime: wall,
			submitAt: at,
		})
	}
	return specs
}

// expectedRuntime accounts for drift and phase factors analytically.
func expectedRuntime(s app.Spec) time.Duration {
	total := 0.0
	mean := float64(s.IterTime.Mean())
	for i := 0; i < s.TotalIters; i++ {
		f := 1 + s.DriftPerIter*float64(i)
		if s.PhaseAt > 0 && i >= s.PhaseAt && s.PhaseFactor > 0 {
			f *= s.PhaseFactor
		}
		total += mean * f
	}
	return time.Duration(total)
}

// runSchedScenario executes the scenario and collects the outcome.
func runSchedScenario(sc schedScenario) schedOutcome {
	engine := sim.NewEngine(sc.Seed)
	db := tsdb.New(0)
	nodes := make([]string, sc.Nodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%03d", i)
	}
	scheduler := sched.New(engine, nodes, sc.Policy)
	runtime := app.NewRuntime(engine, db, nil, nil)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	specs := generateJobs(sc)
	// terminalItems counts workload items that reached a final fate
	// (completed, or killed with resubmissions exhausted); it terminates the
	// periodic loop and watcher events so the engine can drain.
	terminalItems := 0
	finished := func() bool { return terminalItems >= len(specs) }

	kb := sc.WarmKB
	if kb == nil {
		kb = knowledge.NewBase()
	}
	var ctl *schedcase.Controller
	var loop *core.Loop
	if sc.LoopEnabled {
		ctl = schedcase.New(sc.LoopConfig, db, scheduler, runtime, kb, sim.VirtualClock{Engine: engine})
		loop = ctl.Loop()
		loop.Mode = sc.LoopMode
		loop.Human = sc.Human
		loop.Rng = rand.New(rand.NewSource(sc.Seed + 7))
		if sc.ConfidenceGate > 0 {
			loop.Guards = append(loop.Guards, core.ConfidenceGate{Min: sc.ConfidenceGate})
		}
		loop.RunEvery(sim.VirtualClock{Engine: engine}, 5*time.Minute, finished)
	}

	// resubmits tracks per-workload-item resubmission counts; completedItem
	// marks items that finished (originally or after resubmission).
	resubmits := map[string]int{}
	completedItem := map[string]bool{}
	walltimes := map[string]time.Duration{}
	var out schedOutcome

	for _, js := range specs {
		js := js
		runtime.RegisterSpec(js.name, js.spec)
		walltimes[js.name] = js.walltime
		engine.At(js.submitAt, func() {
			_, err := scheduler.Submit(js.name, "user"+js.name[3:], js.nodes, js.walltime, 0)
			if err != nil {
				panic(err)
			}
		})
	}
	out.Submitted = len(specs)

	// Terminal-state watcher: resolves loop predictions and models the user
	// resubmitting killed jobs with 1.5x the previous request.
	handled := map[int]bool{}
	engine.Every(time.Minute, time.Minute, func() bool {
		for _, j := range scheduler.Jobs() {
			if handled[j.ID] {
				continue
			}
			switch j.State {
			case sched.JobCompleted:
				handled[j.ID] = true
				if ctl != nil {
					ctl.NoteJobEnd(j)
				}
				if !completedItem[j.Name] {
					completedItem[j.Name] = true
					terminalItems++
					if j.ResubmitOf == 0 {
						out.CompletedFirst++
					}
					out.CompletedAll++
				}
			case sched.JobKilledWalltime, sched.JobKilledMaint:
				handled[j.ID] = true
				if ctl != nil {
					ctl.NoteJobEnd(j)
				}
				if resubmits[j.Name] < sc.MaxResubmits {
					resubmits[j.Name]++
					out.Resubmits++
					walltimes[j.Name] = time.Duration(float64(walltimes[j.Name]) * 1.5)
					if _, err := scheduler.Submit(j.Name, j.User, j.Nodes, walltimes[j.Name], j.ID); err != nil {
						panic(err)
					}
				} else {
					terminalItems++ // permanently failed
				}
			}
		}
		return !finished()
	})

	engine.Run()

	st := scheduler.Stats()
	out.KilledWall = st.KilledWall
	out.WastedNodeH = st.NodeSecondsWasted / 3600
	out.UsedNodeH = st.NodeSecondsUsed / 3600
	out.MeanWait = st.MeanWait()
	out.Makespan = engine.Now()
	out.BackfillStarts = st.BackfillStart
	out.ExtReq = st.ExtensionRequests
	out.ExtGranted = st.ExtensionsGranted
	out.ExtPartial = st.ExtensionsPartial
	out.ExtDenied = st.ExtensionsDenied
	out.ExtGrantedTotal = st.ExtensionGranted
	out.UntakenBackfill = st.UntakenBackfillDelay
	out.KB = kb
	if ctl != nil {
		out.Assess = kb.Assess("scheduler-case")
	}
	if loop != nil {
		out.Loop = loop.Metrics()
		if out.Loop.ExecutedActions > 0 {
			out.MeanDecisionLatency = out.Loop.DecisionLatency / time.Duration(out.Loop.ExecutedActions)
		}
	}
	// Over-extension: unused granted time of completed extended jobs.
	for _, j := range scheduler.Jobs() {
		if j.State == sched.JobCompleted && j.ExtensionTotal > 0 {
			unused := j.Deadline - j.End
			if unused > 0 {
				out.OverExtensionH += unused.Seconds() / 3600 * float64(j.Nodes)
			}
		}
	}
	return out
}
