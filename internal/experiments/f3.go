package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/sched"
)

func init() {
	register("EXP-F3", "Scheduler use case: walltime-extension autonomy loop vs baselines (Fig. 3)", runF3)
	register("EXP-F3b", "Scheduler-case trust metrics: extension accuracy, guardrails, backfill impact (§III(iv))", runF3b)
}

// runF3 reproduces the paper's flagship case. The paper's incentive
// statement — "increase in completed and decrease in resubmitted jobs" plus
// reduced wasted allocation — is measured against three baselines: users as
// they are (no loop), users padding 2x, and oracle users.
func runF3(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F3",
		Title: "Walltime-extension autonomy loop vs baselines",
		Claim: "adopting the loop increases completed jobs and decreases resubmitted jobs (§III(v)) " +
			"without unbounded impact on other users",
		Columns: []string{"mode", "completed-1st", "completed-all", "killed", "resubmits",
			"wasted-nodeh", "mean-wait", "extensions", "ext-denied", "makespan-h"},
	}
	type mode struct {
		name   string
		mutate func(*schedScenario)
	}
	modes := []mode{
		{"no-loop", func(sc *schedScenario) {}},
		{"padding-2x", func(sc *schedScenario) { sc.PaddingFactor = 2.0 }},
		{"autonomy-loop", func(sc *schedScenario) { sc.LoopEnabled = true }},
		{"oracle-user", func(sc *schedScenario) { sc.Oracle = true }},
	}
	for _, m := range modes {
		sc := defaultScenario(opt)
		m.mutate(&sc)
		out := runSchedScenario(sc)
		res.AddRow(
			m.name,
			fmt.Sprintf("%d/%d (%s)", out.CompletedFirst, out.Submitted, pct(float64(out.CompletedFirst), float64(out.Submitted))),
			fmt.Sprintf("%d/%d", out.CompletedAll, out.Submitted),
			out.KilledWall,
			out.Resubmits,
			fmt.Sprintf("%.1f", out.WastedNodeH),
			out.MeanWait.Truncate(time.Second).String(),
			fmt.Sprintf("%d (+%d partial)", out.ExtGranted, out.ExtPartial),
			out.ExtDenied,
			fmt.Sprintf("%.1f", out.Makespan.Hours()),
		)
	}
	res.AddNote("completed-1st counts workload items finishing without resubmission; killed counts walltime kills across all attempts")
	res.AddNote("the loop should approach oracle completion rates while no-loop pays kills+resubmits and padding-2x pays queue wait")
	return res
}

// runF3b sweeps the trust guardrails the paper names in §III(iv): limits on
// the number and total of extensions, and the backfill guard protecting
// other users' opportunities; it reports extension accuracy ("comparison of
// the time extension with the actual application run time").
func runF3b(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F3b",
		Title: "Extension guardrails, accuracy, and backfill impact",
		Claim: "validation via extension-vs-actual comparison; controls limit extensions per job; " +
			"overestimation shows up as untaken backfill opportunities",
		Columns: []string{"policy", "completed-all", "ext-granted", "ext-denied", "over-est", "under-est",
			"rel-err", "overext-nodeh", "untaken-backfill"},
	}
	type policyRow struct {
		name   string
		policy sched.ExtensionPolicy
	}
	policies := []policyRow{
		{"cap1+guard", sched.ExtensionPolicy{MaxPerJob: 1, MaxTotalPerJob: 2 * time.Hour, BackfillGuard: true}},
		{"cap3+guard", sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: true}},
		{"cap3-noguard", sched.ExtensionPolicy{MaxPerJob: 3, MaxTotalPerJob: 6 * time.Hour, BackfillGuard: false}},
		{"uncapped-noguard", sched.ExtensionPolicy{MaxPerJob: 50, MaxTotalPerJob: 100 * time.Hour, BackfillGuard: false}},
	}
	for _, p := range policies {
		sc := defaultScenario(opt)
		sc.LoopEnabled = true
		sc.Policy = p.policy
		out := runSchedScenario(sc)
		res.AddRow(
			p.name,
			fmt.Sprintf("%d/%d", out.CompletedAll, out.Submitted),
			out.ExtGranted+out.ExtPartial,
			out.ExtDenied,
			out.Assess.OverCount,
			out.Assess.UnderCount,
			fmt.Sprintf("%.2f", out.Assess.MeanRelErr),
			fmt.Sprintf("%.1f", out.OverExtensionH),
			out.UntakenBackfill.Truncate(time.Second).String(),
		)
	}
	res.AddNote("over/under-est compare the loop's predicted completion time against the realized one per extension")
	res.AddNote("untaken-backfill accumulates only without the guard: the price other users pay for overestimated extensions")
	return res
}
