package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/maintcase"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-U1", "Maintenance use case: checkpoint-before-maintenance vs kill (§III case 1)", runU1)
}

// runU1 runs a fleet of long jobs into a maintenance window with and without
// the maintenance autonomy loop, comparing preserved work and completion.
func runU1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-U1",
		Title: "Maintenance window at t=6h: loop vs baseline",
		Claim: "responses to system maintenance events ensure continuity of running jobs " +
			"(via the same checkpoint interaction as the Scheduler case)",
		Columns: []string{"mode", "killed-by-maint", "preserved", "completed-by-24h",
			"lost-node-h", "mean-completion-h"},
	}
	jobs := 24
	if opt.Quick {
		jobs = 12
	}
	for _, withLoop := range []bool{false, true} {
		engine := sim.NewEngine(opt.Seed)
		db := tsdb.New(0)
		nodes := make([]string, 16)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%03d", i)
		}
		scheduler := sched.New(engine, nodes, sched.DefaultExtensionPolicy())
		runtime := app.NewRuntime(engine, db, nil, nil)
		runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
		scheduler.SetHooks(runtime.Start, runtime.Kill)
		var ctl *maintcase.Controller
		if withLoop {
			ctl = maintcase.New(maintcase.DefaultConfig(), db, scheduler, runtime)
			done := false
			ctl.Loop().RunEvery(sim.VirtualClock{Engine: engine}, 5*time.Minute, func() bool { return done })
			engine.At(9*time.Hour, func() { done = true })
		}
		// The window is ANNOUNCED one hour in, after the fleet is already
		// running — the paper's scenario: running jobs must be preserved,
		// not merely scheduled around a long-known reservation.
		engine.At(time.Hour, func() {
			if err := scheduler.AddMaintenance(6*time.Hour, 8*time.Hour); err != nil {
				panic(err)
			}
		})
		rng := sim.NewEngine(opt.Seed + 1).Rand() // independent stream for job shapes
		var js []*sched.Job
		for i := 0; i < jobs; i++ {
			name := fmt.Sprintf("job%02d", i)
			iters := 240 + rng.Intn(480) // 4-12 hours of one-minute iterations
			runtime.RegisterSpec(name, app.Spec{
				Name: name, TotalIters: iters,
				IterTime:       sim.Constant{V: time.Minute},
				CheckpointCost: 2 * time.Minute,
			})
			j, err := scheduler.Submit(name, "u", 1+rng.Intn(2), 14*time.Hour, 0)
			if err != nil {
				panic(err)
			}
			js = append(js, j)
		}
		// Baseline behavior after a maintenance kill: the user resubmits,
		// restarting from scratch (no checkpoint exists).
		resubmitted := map[int]bool{}
		engine.Every(time.Minute, time.Minute, func() bool {
			for _, j := range scheduler.Jobs() {
				if j.State == sched.JobKilledMaint && !resubmitted[j.ID] {
					resubmitted[j.ID] = true
					if _, err := scheduler.Submit(j.Name, j.User, j.Nodes, j.Walltime, j.ID); err != nil {
						panic(err)
					}
				}
			}
			return engine.Now() < 24*time.Hour
		})
		engine.RunUntil(24 * time.Hour)

		st := scheduler.Stats()
		completed := 0
		var completionSum time.Duration
		for _, j := range js {
			final := j
			// Follow the resubmission chain to the terminal attempt.
			for _, k := range scheduler.Jobs() {
				if k.ResubmitOf == final.ID {
					final = k
				}
			}
			if final.State == sched.JobCompleted {
				completed++
				completionSum += final.End
			}
		}
		meanCompl := "n/a"
		if completed > 0 {
			meanCompl = fmt.Sprintf("%.1f", (completionSum / time.Duration(completed)).Hours())
		}
		preserved := 0
		if ctl != nil {
			preserved = ctl.Preserved
		}
		mode := "no-loop"
		if withLoop {
			mode = "autonomy-loop"
		}
		res.AddRow(mode, st.KilledMaint, preserved, fmt.Sprintf("%d/%d", completed, jobs),
			fmt.Sprintf("%.1f", st.NodeSecondsWasted/3600), meanCompl)
	}
	res.AddNote("lost-node-h counts occupancy of maintenance-killed jobs (work redone from scratch in the baseline)")
	return res
}
