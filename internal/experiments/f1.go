package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/app"
	"autoloop/internal/facility"
	"autoloop/internal/hw"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-F1", "Holistic monitoring and ODA across all four domains (Fig. 1)", runF1)
}

// runF1 exercises the full Fig. 1 pipeline: sensors from building
// infrastructure, system hardware, system software, and applications flow
// through one monitoring plane into the TSDB; ODA detectors then diagnose an
// injected anomaly in each domain. The table reports detection latency per
// domain plus pipeline statistics.
func runF1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F1",
		Title: "Holistic MODA pipeline: one anomaly per Fig. 1 domain",
		Claim: "holistic monitoring spans facility, hardware, software, and applications; " +
			"ODA diagnoses across all of them from one data plane",
		Columns: []string{"domain", "signal", "injected-at", "detected-at", "latency"},
	}
	horizon := 8 * time.Hour
	if opt.Quick {
		horizon = 4 * time.Hour
	}
	engine := sim.NewEngine(opt.Seed)
	db := tsdb.New(0)

	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 32
	cl := hw.New(engine, ccfg)
	plant := facility.New(engine, facility.DefaultConfig(), cl)
	fs := pfs.New(engine, pfs.Config{OSTs: 8, OSTBandwidthMBps: 300, DefaultStripeCount: 4})
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, fs, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)

	// The monitoring plane: every domain registers its collector; one
	// sampling cadence feeds the TSDB.
	reg := telemetry.NewRegistry()
	reg.Register(cl.Collector())
	reg.Register(plant.Collector())
	reg.Register(fs.Collector())
	reg.Register(scheduler.Collector())
	sample := 30 * time.Second
	pipe := telemetry.NewPipeline(reg, db)
	engine.Every(sample, sample, func() bool {
		pipe.Sample(engine.Now())
		return engine.Now() < horizon
	})

	// Steady workload: compute + I/O apps keeping the system warm.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("steady%02d", i)
		runtime.RegisterSpec(name, app.Spec{
			Name: name, TotalIters: int(horizon/time.Minute) + 60,
			IterTime: sim.LogNormal{MeanV: time.Minute, CV: 0.1},
			IOEvery:  5, IOSizeMB: 200, StripeCount: 4,
		})
		if _, err := scheduler.Submit(name, "ops", 2, horizon+2*time.Hour, 0); err != nil {
			panic(err)
		}
	}

	// Injections, one per domain.
	injections := map[string]time.Duration{
		"hardware":    horizon / 4,
		"storage":     horizon / 2,
		"application": horizon * 3 / 4,
		"facility":    horizon / 8,
	}
	// Hardware: a busy node's fans fail — its thermal resistance rises 6x
	// and the component temperature runs far beyond the fleet.
	engine.At(injections["hardware"], func() { _ = cl.SetThermalFault("n000", 6) })
	// Storage: OST 5 degrades 10x.
	engine.At(injections["storage"], func() { _ = fs.SetOSTHealth(5, 0.1) })
	// Application: a misconfigured job starts (context-switch storm).
	runtime.RegisterSpec("storm", app.Spec{
		Name: "storm", TotalIters: 240, IterTime: sim.Constant{V: time.Minute},
		Misconfig: app.MisconfigThreads,
	})
	engine.At(injections["application"], func() {
		if _, err := scheduler.Submit("storm", "user9", 1, 5*time.Hour, 0); err != nil {
			panic(err)
		}
	})
	// Facility: cooling degradation — the supply setpoint is forced down,
	// collapsing the plant's COP and driving PUE up.
	engine.At(injections["facility"], func() { plant.SetSupplySetpointC(14) })

	// ODA detectors polling the TSDB (the Analyze half of Fig. 1).
	detected := map[string]time.Duration{}
	note := func(domain string, at time.Duration) {
		if _, seen := detected[domain]; !seen {
			detected[domain] = at
		}
	}
	pueCUSUM := analytics.NewCUSUM(10, 0.005, 0.05)
	// The detector poll is the per-tick inner loop of the ODA plane: points
	// and values go through reused buffers on the zero-copy LatestInto
	// surface, so polling allocates nothing in steady state.
	var ptsBuf []telemetry.Point
	var vals []float64
	engine.Every(time.Minute, time.Minute, func() bool {
		now := engine.Now()
		// Hardware: robust fleet outlier on node temperatures.
		if ptsBuf = db.LatestInto(ptsBuf[:0], "node.temp.celsius", nil); len(ptsBuf) > 4 {
			vals = vals[:0]
			for _, p := range ptsBuf {
				vals = append(vals, p.Value)
			}
			if outliers := analytics.MADOutliers(vals, 6, 1); len(outliers) > 0 {
				note("hardware", now)
			}
		}
		// Storage: MAD outlier across per-OST latency.
		if ptsBuf = db.LatestInto(ptsBuf[:0], "pfs.ost.lat_ms", nil); len(ptsBuf) >= 4 {
			vals = vals[:0]
			for _, p := range ptsBuf {
				if p.Value > 0.1 {
					vals = append(vals, p.Value)
				}
			}
			if len(vals) >= 4 && len(analytics.MADOutliers(vals, 5, 1)) > 0 {
				note("storage", now)
			}
		}
		// Application: context-switch storm threshold.
		ptsBuf = db.LatestInto(ptsBuf[:0], "app.ctx_switch_rate", nil)
		for _, p := range ptsBuf {
			if p.Value > 20000 {
				note("application", now)
			}
		}
		// Facility: CUSUM on PUE.
		if pue, ok := db.LatestValue("facility.pue", telemetry.Labels{"plant": "p0"}); ok {
			if pueCUSUM.Step(pue) {
				note("facility", now)
			}
		}
		return now < horizon
	})

	engine.RunUntil(horizon)

	for _, domain := range []string{"facility", "hardware", "storage", "application"} {
		inj := injections[domain]
		det, ok := detected[domain]
		detStr, latStr := "MISSED", "-"
		if ok && det >= inj {
			detStr = det.String()
			latStr = (det - inj).String()
		} else if ok && det < inj {
			detStr = det.String()
			latStr = "FALSE-POSITIVE"
		}
		signal := map[string]string{
			"facility":    "facility.pue (CUSUM)",
			"hardware":    "node.temp.celsius (fleet MAD)",
			"storage":     "pfs.ost.lat_ms (fleet MAD)",
			"application": "app.ctx_switch_rate (threshold)",
		}[domain]
		res.AddRow(domain, signal, inj.String(), detStr, latStr)
	}
	res.AddNote("pipeline: %d collectors, %d series, %d samples ingested over %v of operation",
		reg.Size(), db.NumSeries(), db.Appended(), horizon)
	return res
}
