// Package experiments contains one runnable experiment per figure and per
// qualitative claim of the paper, as indexed in DESIGN.md §3. Each runner
// assembles the simulated substrates and autonomy loops, executes a
// deterministic scenario, and returns a Result whose table is the
// reproduction artifact recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output: a labeled table plus free-form notes.
type Result struct {
	ID    string
	Title string
	// Claim quotes or paraphrases what the paper asserts; the table is the
	// measured counterpart.
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (r *Result) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if r.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Claim)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (r *Result) CSV() string {
	var b strings.Builder
	writeCSV := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeCSV(r.Columns)
	for _, row := range r.Rows {
		writeCSV(row)
	}
	return b.String()
}

// Options configures an experiment run.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Quick shrinks the scenario for benchmarks and smoke tests.
	Quick bool
}

// Runner executes one experiment.
type Runner func(opt Options) *Result

// registry maps experiment IDs to runners, populated by init() in each
// experiment file.
var registry = map[string]entry{}

type entry struct {
	runner Runner
	title  string
}

func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{runner: r, title: title}
}

// IDs returns all registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's one-line description.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes the experiment with the given options.
func Run(id string, opt Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return e.runner(opt), nil
}

// RunAll executes every experiment in ID order.
func RunAll(opt Options) []*Result {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, opt)
		if err == nil {
			out = append(out, res)
		}
	}
	return out
}

// pct formats a ratio as a percentage string.
func pct(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
