package experiments

import (
	"fmt"
	"math"
	"time"

	"autoloop/internal/core"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-F2a", "MAPE-K pattern scalability: decision latency vs managed-system count (Fig. 2)", runF2a)
	register("EXP-F2b", "MAPE-K pattern stability: decentralized planning on a shared resource (Fig. 2)", runF2b)
	register("EXP-F2c", "MAPE-K pattern robustness: control coverage under controller failures (Fig. 2)", runF2c)
}

// ---- shared managed subsystem for the pattern experiments ----

// subsystem is a minimal managed system: a work queue that grows at a fixed
// arrival rate; the control action drains it. It exposes a Monitor (queue
// depth) and an Executor (drain), i.e. exactly the M/E split of the
// master-worker pattern.
type subsystem struct {
	name    string
	queue   float64
	arrival float64 // work per tick
	drained float64
	actions int
	lastAct time.Duration
}

func (s *subsystem) step() { s.queue += s.arrival }

func (s *subsystem) monitor() core.Monitor {
	return core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
		return core.Observation{Time: now, Points: []telemetry.Point{{
			Name: "subsys.queue", Labels: telemetry.Labels{"sub": s.name}, Time: now, Value: s.queue,
		}}}, nil
	})
}

func (s *subsystem) executor() core.Executor {
	return core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
		amount := math.Min(a.Amount, s.queue)
		s.queue -= amount
		s.drained += amount
		s.actions++
		s.lastAct = now
		return core.ActionResult{Action: a, Honored: true, Granted: amount}, nil
	})
}

// drainAnalyzer flags any subsystem whose queue exceeds the threshold.
func drainAnalyzer(threshold float64) core.Analyzer {
	return core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
		sym := core.Symptoms{Time: now}
		for _, p := range obs.Points {
			if p.Name == "subsys.queue" && p.Value > threshold {
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "backlog", Subject: p.Labels["sub"], Value: p.Value, Confidence: 1,
				})
			}
		}
		return sym, nil
	})
}

// drainPlanner plans to drain each flagged subsystem's full backlog.
func drainPlanner() core.Planner {
	return core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
		plan := core.Plan{Time: now}
		for _, f := range sym.Findings {
			plan.Actions = append(plan.Actions, core.Action{
				Kind: "drain", Subject: f.Subject, Amount: f.Value, Confidence: 1,
			})
		}
		return plan, nil
	})
}

// runF2a measures how the decision latency of each pattern scales with the
// number of managed subsystems. The centralized Plan of master-worker is
// modeled with a cost quadratic in the inputs it must jointly consider
// (pairwise interference reasoning), local plans are constant, and the
// hierarchical parent pays the quadratic cost only over its direct children
// (groups), on a slower cadence.
func runF2a(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F2a",
		Title: "Decision latency vs managed-system count N",
		Claim: "centralized Plan \"suffers from limited scalability\"; hierarchical control aims " +
			"\"to improve scalability without compromising stability\"",
		Columns: []string{"N", "master-worker", "coordinated", "hierarchical"},
	}
	sizes := []int{4, 16, 64, 256}
	if opt.Quick {
		sizes = []int{4, 16, 64}
	}
	const unit = 500 * time.Microsecond // plan cost per considered pair/input
	planCost := func(n int) time.Duration { return time.Duration(n*n) * unit }

	for _, n := range sizes {
		latencies := map[string]time.Duration{}

		// Master-worker: one central A+P over all N workers.
		{
			engine := sim.NewEngine(opt.Seed)
			subs, workers := makeSubsystems(n)
			mw := core.NewMasterWorker("mw", drainAnalyzer(5), drainPlanner(), workers)
			mw.Clock = sim.VirtualClock{Engine: engine}
			mw.PlanCost = planCost
			runPatternWindow(engine, subs, func(now time.Duration) { mw.Tick(now) })
			latencies["master-worker"] = meanLatency(mw.Metrics())
		}

		// Coordinated: N full local loops, each planning O(1).
		{
			engine := sim.NewEngine(opt.Seed)
			subs, _ := makeSubsystems(n)
			loops := make([]*core.Loop, n)
			for i, s := range subs {
				l := core.NewLoop("c"+s.name, s.monitor(), drainAnalyzer(5), drainPlanner(), s.executor())
				loops[i] = l
			}
			coord := core.NewCoordinated("coord", loops)
			// Local plan cost is constant: model it as a fixed execution delay
			// by measuring it directly in the metrics (zero modeled delay).
			runPatternWindow(engine, subs, func(now time.Duration) { coord.Tick(now) })
			var total core.Metrics
			for _, l := range loops {
				m := l.Metrics()
				total.ExecutedActions += m.ExecutedActions
				total.DecisionLatency += m.DecisionLatency + time.Duration(1)*unit*time.Duration(m.ExecutedActions)
			}
			latencies["coordinated"] = meanLatency(total)
		}

		// Hierarchical: sqrt(N) groups; each group master plans over its
		// members, the parent plans over group aggregates every 10 ticks.
		{
			engine := sim.NewEngine(opt.Seed)
			subs, workers := makeSubsystems(n)
			groups := int(math.Sqrt(float64(n)))
			if groups < 1 {
				groups = 1
			}
			per := (n + groups - 1) / groups
			var masters []*core.MasterWorker
			for g := 0; g < groups; g++ {
				lo, hi := g*per, (g+1)*per
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				mw := core.NewMasterWorker(fmt.Sprintf("g%d", g), drainAnalyzer(5), drainPlanner(), workers[lo:hi])
				mw.Clock = sim.VirtualClock{Engine: engine}
				mw.PlanCost = planCost // quadratic, but only over group size
				masters = append(masters, mw)
			}
			runPatternWindow(engine, subs, func(now time.Duration) {
				for _, mw := range masters {
					mw.Tick(now)
				}
			})
			var total core.Metrics
			for _, mw := range masters {
				m := mw.Metrics()
				total.ExecutedActions += m.ExecutedActions
				total.DecisionLatency += m.DecisionLatency
			}
			latencies["hierarchical"] = meanLatency(total)
		}

		res.AddRow(n,
			latencies["master-worker"].Truncate(time.Millisecond).String(),
			latencies["coordinated"].Truncate(time.Millisecond).String(),
			latencies["hierarchical"].Truncate(time.Millisecond).String(),
		)
	}
	res.AddNote("decision latency = symptom-to-execution delay; plan cost modeled as %v per jointly-considered input pair", unit)
	res.AddNote("master-worker grows O(N^2), coordinated stays flat, hierarchical pays O((N/sqrt(N))^2) per group")
	return res
}

func makeSubsystems(n int) ([]*subsystem, []*core.Worker) {
	subs := make([]*subsystem, n)
	workers := make([]*core.Worker, n)
	for i := 0; i < n; i++ {
		s := &subsystem{name: fmt.Sprintf("s%03d", i), arrival: 3}
		subs[i] = s
		workers[i] = core.NewWorker(s.name, s.monitor(), s.executor())
	}
	return subs, workers
}

// runPatternWindow advances subsystems and ticks the controller once per
// second of virtual time for a fixed window.
func runPatternWindow(engine *sim.Engine, subs []*subsystem, tick func(now time.Duration)) {
	const window = 120 * time.Second
	engine.Every(time.Second, time.Second, func() bool {
		for _, s := range subs {
			s.step()
		}
		tick(engine.Now())
		return engine.Now() < window
	})
	engine.Run()
}

func meanLatency(m core.Metrics) time.Duration {
	if m.ExecutedActions == 0 {
		return 0
	}
	return m.DecisionLatency / time.Duration(m.ExecutedActions)
}

// ---- F2b: stability ----

// sharedResource models a congestible resource: latency explodes as total
// offered rate approaches capacity (M/M/1-style).
type sharedResource struct {
	capacity float64
	offered  map[string]float64
}

func (r *sharedResource) total() float64 {
	t := 0.0
	for _, v := range r.offered {
		t += v
	}
	return t
}

func (r *sharedResource) latency() float64 {
	util := r.total() / r.capacity
	if util >= 0.99 {
		util = 0.99
	}
	base := 1.0
	return base / (1 - util)
}

// runF2b contrasts uncoordinated local planners (each adapting its own rate
// from the shared latency signal) with intent-board coordination and
// hierarchical allocation, measuring oscillation of the aggregate offered
// load — the "instability and side-effects due to indirect interactions"
// the paper warns about.
func runF2b(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F2b",
		Title: "Aggregate-load oscillation on a shared resource, 16 local loops",
		Claim: "fully decentralized Plan \"may suffer from instability and side-effects due to " +
			"indirect interactions\"; coordination restores stability",
		Columns: []string{"variant", "mean-util", "osc-index", "p99-latency", "latency-violations"},
	}
	const (
		nLoops   = 16
		capacity = 1000.0
		target   = 4.0 // latency objective (units of base latency)
	)
	ticks := 600
	if opt.Quick {
		ticks = 300
	}

	type variant struct {
		name        string
		coordinated bool
		hierarchic  bool
	}
	for _, v := range []variant{
		{"uncoordinated", false, false},
		{"coordinated", true, false},
		{"hierarchical", false, true},
	} {
		rsc := &sharedResource{capacity: capacity, offered: map[string]float64{}}
		board := core.NewIntentBoard()
		rates := make([]float64, nLoops)
		for i := range rates {
			rates[i] = capacity / nLoops / 2
			rsc.offered[fmt.Sprintf("l%02d", i)] = rates[i]
		}
		// Hierarchical parent state: per-loop allocation.
		alloc := capacity * 0.85 / nLoops

		var utils, totals, lats []float64
		violations := 0
		for tick := 0; tick < ticks; tick++ {
			lat := rsc.latency()
			lats = append(lats, lat)
			if lat > target {
				violations++
			}
			// Parent (hierarchical only): every 10 ticks, set allocations
			// from the global picture, capped below the latency knee.
			if v.hierarchic && tick%10 == 0 {
				if lat > target {
					alloc *= 0.9
				} else {
					alloc *= 1.02
				}
				if alloc > capacity*0.72/nLoops {
					alloc = capacity * 0.72 / nLoops
				}
			}
			for i := 0; i < nLoops; i++ {
				name := fmt.Sprintf("l%02d", i)
				switch {
				case v.hierarchic:
					// Children track the parent's allocation.
					rates[i] = alloc
				case v.coordinated:
					// Consult peers' posted intents: take a fair share of
					// the remaining headroom (below the latency knee)
					// instead of reacting to the shared latency signal.
					peers := board.SumAmount(name, "rate")
					headroom := capacity*0.72 - peers
					share := headroom
					if share > capacity*0.72/nLoops*1.5 {
						share = capacity * 0.72 / nLoops * 1.5
					}
					if share < 1 {
						share = 1
					}
					rates[i] = share
				default:
					// Greedy AIMD on the shared signal: everyone halves and
					// ramps together -> synchronized oscillation.
					if lat > target {
						rates[i] *= 0.5
					} else {
						rates[i] += capacity / nLoops * 0.2
					}
				}
				if rates[i] < 1 {
					rates[i] = 1
				}
				rsc.offered[name] = rates[i]
				board.Post(time.Duration(tick)*time.Second, name, core.Action{Kind: "rate", Amount: rates[i]})
			}
			totals = append(totals, rsc.total())
			utils = append(utils, rsc.total()/capacity)
		}
		osc := oscillationIndex(totals)
		res.AddRow(v.name,
			fmt.Sprintf("%.2f", meanF(utils)),
			fmt.Sprintf("%.3f", osc),
			fmt.Sprintf("%.1f", tsdb.Percentile(lats, 0.99)),
			violations,
		)
	}
	res.AddNote("osc-index = stddev(total offered load)/mean; the uncoordinated variant's synchronized halving/ramping shows as a high index")
	return res
}

func meanF(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func oscillationIndex(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := meanF(vs)
	varsum := 0.0
	for _, v := range vs {
		d := v - m
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(vs)-1)) / m
}

// ---- F2c: robustness ----

// runF2c injects controller failures mid-run and measures control coverage:
// the fraction of subsystems still receiving actions afterward.
func runF2c(opt Options) *Result {
	res := &Result{
		ID:    "EXP-F2c",
		Title: "Control coverage after controller failures, 16 subsystems",
		Claim: "distributed autonomy is \"useful for robust and resilient operations\"; " +
			"operations \"must persist through component and subsystem failures\"",
		Columns: []string{"pattern", "failure", "coverage-before", "coverage-after", "max-backlog-after"},
	}
	const n = 16
	window := 240 * time.Second
	if opt.Quick {
		window = 120 * time.Second
	}
	half := window / 2

	type scenario struct {
		name    string
		failure string
		run     func() ([]*subsystem, func(now time.Duration), func())
	}
	scenarios := []scenario{
		{
			name: "master-worker", failure: "master dies",
			run: func() ([]*subsystem, func(time.Duration), func()) {
				subs, workers := makeSubsystems(n)
				mw := core.NewMasterWorker("mw", drainAnalyzer(5), drainPlanner(), workers)
				return subs, mw.Tick, func() { mw.SetEnabled(false) }
			},
		},
		{
			name: "coordinated", failure: "25% of loops die",
			run: func() ([]*subsystem, func(time.Duration), func()) {
				subs, _ := makeSubsystems(n)
				loops := make([]*core.Loop, n)
				for i, s := range subs {
					loops[i] = core.NewLoop(s.name, s.monitor(), drainAnalyzer(5), drainPlanner(), s.executor())
				}
				coord := core.NewCoordinated("coord", loops)
				return subs, coord.Tick, func() {
					for i := 0; i < n/4; i++ {
						loops[i].SetEnabled(false)
					}
				}
			},
		},
		{
			name: "hierarchical", failure: "parent dies",
			run: func() ([]*subsystem, func(time.Duration), func()) {
				subs, workers := makeSubsystems(n)
				groups := 4
				per := n / groups
				var masters []*core.MasterWorker
				for g := 0; g < groups; g++ {
					mw := core.NewMasterWorker(fmt.Sprintf("g%d", g), drainAnalyzer(5), drainPlanner(), workers[g*per:(g+1)*per])
					masters = append(masters, mw)
				}
				// The "parent" retunes group thresholds; its death leaves the
				// group masters running with stale setpoints.
				parentAlive := true
				tick := func(now time.Duration) {
					for _, mw := range masters {
						mw.Tick(now)
					}
					_ = parentAlive
				}
				return subs, tick, func() { parentAlive = false }
			},
		},
		{
			name: "hierarchical", failure: "1 of 4 group masters dies",
			run: func() ([]*subsystem, func(time.Duration), func()) {
				subs, workers := makeSubsystems(n)
				groups := 4
				per := n / groups
				var masters []*core.MasterWorker
				for g := 0; g < groups; g++ {
					mw := core.NewMasterWorker(fmt.Sprintf("g%d", g), drainAnalyzer(5), drainPlanner(), workers[g*per:(g+1)*per])
					masters = append(masters, mw)
				}
				tick := func(now time.Duration) {
					for _, mw := range masters {
						mw.Tick(now)
					}
				}
				return subs, tick, func() { masters[0].SetEnabled(false) }
			},
		},
	}

	for _, sc := range scenarios {
		engine := sim.NewEngine(opt.Seed)
		subs, tick, fail := sc.run()
		// Snapshot per-subsystem action counts at the failure instant so
		// coverage can be attributed to each half of the window.
		atHalf := make([]int, len(subs))
		engine.At(half, func() {
			fail()
			for i, s := range subs {
				atHalf[i] = s.actions
			}
		})
		engine.Every(time.Second, time.Second, func() bool {
			for _, s := range subs {
				s.step()
			}
			tick(engine.Now())
			return engine.Now() < window
		})
		engine.Run()
		before, after := 0, 0
		maxBacklog := 0.0
		for i, s := range subs {
			if atHalf[i] > 0 {
				before++
			}
			if s.actions > atHalf[i] {
				after++
			}
			if s.queue > maxBacklog {
				maxBacklog = s.queue
			}
		}
		res.AddRow(sc.name, sc.failure,
			pct(float64(before), n), pct(float64(after), n),
			fmt.Sprintf("%.0f", maxBacklog))
	}
	res.AddNote("coverage-after = subsystems still receiving control actions after the failure at t=%v", half)
	res.AddNote("master-worker loses all control with its master; decentralized patterns degrade only where loops died")
	return res
}
