package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/cases/ioqoscase"
	"autoloop/internal/knowledge"
	"autoloop/internal/pfs"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-U2", "I/O QoS use case: adaptive hierarchical QoS vs static vs none (§III case 2)", runU2)
}

// runU2 reproduces the I/O QoS scenario: a deadline-dependent workflow
// shares the filesystem with a saturating best-effort tenant, under three
// QoS regimes.
func runU2(opt Options) *Result {
	res := &Result{
		ID:    "EXP-U2",
		Title: "Deadline tenant vs saturating interferer on a shared PFS",
		Claim: "adapt QoS parameters ... to decrease interference, reduce tail latency, and provide " +
			"more consistent results for deadline dependent workflows",
		Columns: []string{"qos-regime", "victim-p50-ms", "victim-p99-ms", "deadline-misses",
			"victim-consistency-cv", "interferer-MB"},
	}
	horizon := 45 * time.Minute
	if opt.Quick {
		horizon = 20 * time.Minute
	}
	const deadlineMS = 2000.0 // a victim write is "missed" beyond 2s

	type regime struct {
		name     string
		noQoS    bool
		adaptive bool
	}
	for _, rg := range []regime{
		{"none", true, false},
		{"static", false, false},
		{"adaptive", false, true},
	} {
		engine := sim.NewEngine(opt.Seed)
		db := tsdb.New(0)
		fs := pfs.New(engine, pfs.Config{OSTs: 4, OSTBandwidthMBps: 100, DefaultStripeCount: 2})
		kb := knowledge.NewBase()
		pipe := telemetry.NewPipeline(telemetry.NewRegistryOf(fs.Collector()), db)
		engine.Every(10*time.Second, 10*time.Second, func() bool {
			pipe.Sample(engine.Now())
			return engine.Now() < horizon
		})
		tenants := []ioqoscase.Tenant{
			{Name: "deadline", Priority: 3, TargetLatMS: 500},
			{Name: "batch", Priority: 1},
		}
		switch {
		case rg.adaptive:
			ctl := ioqoscase.New(ioqoscase.DefaultConfig(tenants, 2000), db, fs, kb)
			h := ctl.Hierarchy(3)
			h.RunEvery(sim.VirtualClock{Engine: engine}, 10*time.Second, func() bool { return engine.Now() >= horizon })
		case !rg.noQoS:
			fs.SetQoS("deadline", 1500, 3000)
			fs.SetQoS("batch", 500, 1000)
		}

		var victimLats, steadyLats []float64
		var interfererMB float64
		steadyFrom := horizon / 2
		// Closed-loop interferer: 8 streams of 150MB writes, reissued on
		// completion — enough to keep the 400 MB/s backend saturated when
		// unthrottled.
		bf := fs.Open("batch", 4, nil)
		var issue func()
		issue = func() {
			if engine.Now() >= horizon {
				return
			}
			fs.Write(bf, 150, func(time.Duration) {
				interfererMB += 150
				issue()
			})
		}
		for i := 0; i < 8; i++ {
			issue()
		}
		vf := fs.Open("deadline", 2, nil)
		engine.Every(10*time.Second, 10*time.Second, func() bool {
			fs.Write(vf, 50, func(l time.Duration) {
				victimLats = append(victimLats, l.Seconds()*1000)
				if engine.Now() >= steadyFrom {
					steadyLats = append(steadyLats, l.Seconds()*1000)
				}
			})
			return engine.Now() < horizon
		})
		engine.RunUntil(horizon)

		misses := 0
		for _, l := range victimLats {
			if l > deadlineMS {
				misses++
			}
		}
		p50 := tsdb.Percentile(victimLats, 0.5)
		cv := 0.0
		if len(steadyLats) > 1 && meanF(steadyLats) > 0 {
			cv = oscillationIndex(steadyLats)
		}
		res.AddRow(rg.name,
			fmt.Sprintf("%.0f", p50),
			fmt.Sprintf("%.0f", tsdb.Percentile(victimLats, 0.99)),
			fmt.Sprintf("%d/%d", misses, len(victimLats)),
			fmt.Sprintf("%.2f", cv),
			fmt.Sprintf("%.0f", interfererMB),
		)
	}
	res.AddNote("interferer: 8 closed-loop 150MB write streams saturating the 400 MB/s backend; static buckets are the loose campaign estimates (1500/500)")
	res.AddNote("consistency-cv = stddev/mean of victim latencies in the steady second half (the paper's 'more consistent results')")
	return res
}
