package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-C1", "Concurrent fleet coordination with cross-loop conflict arbitration", runC1)
}

// c1Loops builds the two deliberately contradictory facility loops of the
// scenario: a thermal guard that lowers the supply setpoint whenever the
// fleet runs hot (safety), and a naive energy saver that raises it whenever
// it is below its ceiling (economy). Both act on the same subject, "plant",
// so any round in which both plan is a cross-loop conflict.
func c1Loops(db *tsdb.DB, plant *facility.Plant, tempLimit float64, moved *int) (guard, saver *core.Loop) {
	guard = core.NewLoop("thermal-guard",
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now, Points: db.Latest("node.temp.celsius", nil)}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			sym := core.Symptoms{Time: now}
			hottest := -1.0
			for _, p := range obs.Points {
				if p.Value > hottest {
					hottest = p.Value
				}
			}
			if hottest > tempLimit-8 {
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "thermal-pressure", Subject: "plant", Value: hottest, Confidence: 1,
					Detail: fmt.Sprintf("hottest node %.1f°C near the %.0f°C limit", hottest, tempLimit),
				})
			}
			return sym, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			plan := core.Plan{Time: now}
			for _, f := range sym.Findings {
				plan.Actions = append(plan.Actions, core.Action{
					Kind: "lower-setpoint", Subject: "plant", Amount: 1, Confidence: 1, Explanation: f.Detail,
				})
			}
			return plan, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			plant.SetSupplySetpointC(plant.SupplySetpointC() - a.Amount)
			*moved++
			return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
		}),
	)
	saver = core.NewLoop("energy-saver",
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			sym := core.Symptoms{Time: now}
			if sp := plant.SupplySetpointC(); sp < 27 {
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "cooling-overspend", Subject: "plant", Value: sp, Confidence: 1,
					Detail: fmt.Sprintf("setpoint %.1f°C below the 27°C economic ceiling", sp),
				})
			}
			return sym, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			plan := core.Plan{Time: now}
			for _, f := range sym.Findings {
				plan.Actions = append(plan.Actions, core.Action{
					Kind: "raise-setpoint", Subject: "plant", Amount: 1, Confidence: 1, Explanation: f.Detail,
				})
			}
			return plan, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			plant.SetSupplySetpointC(plant.SupplySetpointC() + a.Amount)
			*moved++
			return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
		}),
	)
	return guard, saver
}

// runC1 contrasts sequential unarbitrated ticking with the fleet
// coordinator: same two contradictory loops, same workload, same seed. The
// unarbitrated rows show the failure mode the paper's multi-loop vision
// walks into — contradictory same-round actuation thrashing the plant —
// and the coordinator rows show the arbiter suppressing the losing action,
// with every loss accounted on the loop's ArbitratedActions metric and the
// bus's "loop.<name>.arbitrated" topic.
func runC1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-C1",
		Title: "Two contradictory facility loops on one plant: sequential vs fleet-arbitrated",
		Claim: "autonomy loops will operate simultaneously at the level of the facility, the system, " +
			"and jobs — concurrent loops must not issue contradictory actions on a shared subject",
		Columns: []string{"mode", "setpoint-moves", "conflicts", "arbitrated", "thermal-breaches",
			"final-setpoint", "hottest-node"},
	}
	horizon := 8 * time.Hour
	if opt.Quick {
		horizon = 4 * time.Hour
	}
	const tempLimit = 70.0

	for _, arbitrated := range []bool{false, true} {
		engine := sim.NewEngine(opt.Seed)
		db := tsdb.New(0)
		b := bus.New()
		ccfg := hw.DefaultConfig()
		ccfg.Nodes = 32
		ccfg.SensorNoise = 0.01
		cl := hw.New(engine, ccfg)
		plant := facility.New(engine, facility.DefaultConfig(), cl)
		plant.BindAmbient(cl)
		reg := telemetry.NewRegistry()
		reg.Register(cl.Collector())
		reg.Register(plant.Collector())

		// Diurnal load, as in EXP-X1: half the fleet busy at night, nearly
		// all of it by the end of the horizon.
		engine.Every(time.Minute, time.Minute, func() bool {
			frac := 0.5 + 0.45*engine.Now().Hours()/horizon.Hours()
			nodes := cl.UpNodes()
			busy := int(frac * float64(len(nodes)))
			for i, n := range nodes {
				if i < busy {
					cl.SetUtil(n, 0.9)
				} else {
					cl.SetUtil(n, 0.05)
				}
			}
			return engine.Now() < horizon
		})

		moved := 0
		guard, saver := c1Loops(db, plant, tempLimit, &moved)
		guard.Bus = b
		saver.Bus = b

		hottest, breaches := 0.0, 0
		pipe := telemetry.NewPipeline(reg, db)
		var arbitratedLost int
		b.Subscribe("loop.energy-saver.arbitrated", func(bus.Envelope) { arbitratedLost++ })

		var coord *fleet.Coordinator
		if arbitrated {
			// The coordinator plans both loops concurrently and the arbiter
			// lets the thermal guard's lower-setpoint win the plant.
			coord = fleet.New(0).PublishTo(b, "exp-c1")
			coord.Add(guard, 20)
			coord.Add(saver, 5)
			pipe.Drive(coord, 10) // loops tick every 10th sample = every 5 minutes
		} else {
			// Sequential status quo: both loops tick back to back and both
			// actions execute, contradictions and all.
			pipe.Drive(tickPair{saver, guard}, 10)
		}
		engine.Every(30*time.Second, 30*time.Second, func() bool {
			pipe.Sample(engine.Now())
			for _, p := range db.Latest("node.temp.celsius", nil) {
				if p.Value > hottest {
					hottest = p.Value
				}
				if p.Value > tempLimit {
					breaches++
				}
			}
			return engine.Now() < horizon
		})
		engine.RunUntil(horizon)

		mode := "sequential-unarbitrated"
		conflicts, lost := "-", "-"
		if arbitrated {
			mode = "fleet-arbitrated"
			m := coord.Metrics()
			conflicts = fmt.Sprintf("%d", m.Conflicts)
			lost = fmt.Sprintf("%d (%d on bus)", saver.Metrics().ArbitratedActions, arbitratedLost)
		}
		res.AddRow(mode, moved, conflicts, lost, breaches,
			fmt.Sprintf("%.1f°C", plant.SupplySetpointC()),
			fmt.Sprintf("%.1f°C", hottest))
	}
	res.AddNote("both loops tick every 5m on the telemetry cadence; the guard defends %.0f°C, the saver pushes toward 27°C", tempLimit)
	res.AddNote("unarbitrated, every hot round actuates twice (raise then lower); arbitrated, the saver's raise loses the round and is published on loop.energy-saver.arbitrated")
	return res
}

// tickPair ticks two loops sequentially — the pre-fleet status quo.
type tickPair struct{ first, second *core.Loop }

// Tick implements telemetry.Ticker.
func (p tickPair) Tick(now time.Duration) {
	p.first.Tick(now)
	p.second.Tick(now)
}
