package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/misconfcase"
	"autoloop/internal/hw"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-U4", "Misconfiguration use case: detection and response quality (§III case 4)", runU4)
}

// runU4 launches a workload with known injected misconfigurations and
// measures per-type precision, recall, time-to-detect, and the core-hours
// recovered by fixing on the fly.
func runU4(opt Options) *Result {
	res := &Result{
		ID:    "EXP-U4",
		Title: "Injected misconfigurations: detection and response",
		Claim: "detect thread/core mismatch, underutilization, and wrong library paths; inform the " +
			"user or correct on the fly",
		Columns: []string{"kind", "injected", "detected", "recall", "false-pos", "median-ttd", "response"},
	}
	jobs := 120
	if opt.Quick {
		jobs = 48
	}

	engine := sim.NewEngine(opt.Seed)
	db := tsdb.New(0)
	ccfg := hw.DefaultConfig()
	ccfg.Nodes = 48
	ccfg.SensorNoise = 0.01
	cl := hw.New(engine, ccfg)
	scheduler := sched.New(engine, cl.UpNodes(), sched.DefaultExtensionPolicy())
	runtime := app.NewRuntime(engine, db, nil, cl)
	runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
	scheduler.SetHooks(runtime.Start, runtime.Kill)
	ctl := misconfcase.New(misconfcase.DefaultConfig(), db, scheduler, runtime, cl)
	done := false
	ctl.Loop().RunEvery(sim.VirtualClock{Engine: engine}, time.Minute, func() bool { return done })

	rng := rand.New(rand.NewSource(opt.Seed))
	truth := map[int]app.Misconfig{} // job ID -> injected kind
	starts := map[int]time.Duration{}
	var at time.Duration
	injected := map[app.Misconfig]int{}
	for i := 0; i < jobs; i++ {
		at += sim.Exponential{MeanV: 2 * time.Minute}.Sample(rng)
		name := fmt.Sprintf("job%03d", i)
		kind := app.MisconfigNone
		if rng.Float64() < 0.3 {
			kind = []app.Misconfig{app.MisconfigThreads, app.MisconfigUnderutil, app.MisconfigWrongLib}[rng.Intn(3)]
		}
		injected[kind]++
		nodes := 1
		if kind == app.MisconfigUnderutil {
			nodes = 2 + rng.Intn(3)
		}
		spec := app.Spec{
			Name: name, TotalIters: 60 + rng.Intn(120),
			IterTime:  sim.LogNormal{MeanV: 30 * time.Second, CV: 0.1},
			Misconfig: kind,
		}
		engine.At(at, func() {
			j, err := scheduler.Submit(name, "u", nodes, 6*time.Hour, 0)
			if err != nil {
				return // cluster momentarily full for wide jobs
			}
			truth[j.ID] = kind
			starts[j.ID] = engine.Now()
		})
		runtime.RegisterSpec(name, spec)
	}
	engine.Every(time.Minute, time.Minute, func() bool {
		if engine.Now() > at && scheduler.QueueLen() == 0 && len(scheduler.Running()) == 0 {
			done = true
			return false
		}
		return true
	})
	engine.Run()

	// Score detections against ground truth.
	type score struct {
		detected int
		falsePos int
		ttds     []float64
	}
	scores := map[app.Misconfig]*score{
		app.MisconfigThreads:   {},
		app.MisconfigUnderutil: {},
		app.MisconfigWrongLib:  {},
	}
	for _, d := range ctl.Detections {
		want := truth[d.JobID]
		sc := scores[d.Kind]
		if sc == nil {
			continue
		}
		if d.Kind == want {
			sc.detected++
			sc.ttds = append(sc.ttds, (d.At - starts[d.JobID]).Minutes())
		} else {
			sc.falsePos++
		}
	}
	for _, kind := range []app.Misconfig{app.MisconfigThreads, app.MisconfigUnderutil, app.MisconfigWrongLib} {
		sc := scores[kind]
		response := "notify-user"
		if kind != app.MisconfigUnderutil {
			response = "fix-on-the-fly"
		}
		ttd := "n/a"
		if len(sc.ttds) > 0 {
			ttd = fmt.Sprintf("%.1fm", tsdb.Percentile(sc.ttds, 0.5))
		}
		res.AddRow(kind.String(), injected[kind], sc.detected,
			pct(float64(sc.detected), float64(injected[kind])),
			sc.falsePos, ttd, response)
	}
	falseTotal := 0
	for _, s := range scores {
		falseTotal += s.falsePos
	}
	res.AddRow("clean", injected[app.MisconfigNone], "-", "-", falseTotal, "-", "-")
	res.AddNote("%d fixes applied on the fly, %d user notifications", ctl.Fixes, ctl.Notifications)
	res.AddNote("false-pos counts detections whose classified kind differs from the injected ground truth")
	return res
}
