package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/cases/powercase"
	"autoloop/internal/core"
	"autoloop/internal/facility"
	"autoloop/internal/fleet"
	"autoloop/internal/hw"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-X1", "Power/energy control loop with confidence gating (§IV extension)", runX1)
}

// runX1 exercises the facility-domain energy loop the paper's §IV gestures
// at ("safe operations of power and energy controls"): raise the supply-air
// setpoint to save cooling energy when the fleet has thermal headroom, gated
// by confidence; never exceed the component temperature limit.
func runX1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-X1",
		Title: "Cooling-energy optimization under a hard thermal limit",
		Claim: "confidence measures are required ... particularly for safe operations of power and " +
			"energy controls (§IV); the loop must save energy without thermal violations",
		Columns: []string{"mode", "final-setpoint", "cooling-kWh", "saved-vs-static",
			"hottest-node", "limit-violations", "raises/lowers"},
	}
	horizon := 12 * time.Hour
	if opt.Quick {
		horizon = 6 * time.Hour
	}
	const tempLimit = 80.0

	type variant struct {
		name    string
		enabled bool
		gate    float64
	}
	variants := []variant{
		{"static-setpoint", false, 0},
		{"loop-ungated", true, 0},
		{"loop-gated-0.5", true, 0.5},
	}
	var staticKWh float64
	for _, v := range variants {
		engine := sim.NewEngine(opt.Seed)
		db := tsdb.New(0)
		ccfg := hw.DefaultConfig()
		ccfg.Nodes = 32
		ccfg.SensorNoise = 0.01
		cl := hw.New(engine, ccfg)
		plant := facility.New(engine, facility.DefaultConfig(), cl)
		plant.BindAmbient(cl)
		reg := telemetry.NewRegistry()
		reg.Register(cl.Collector())
		reg.Register(plant.Collector())

		// Diurnal load: half the fleet busy at night, all of it by midday.
		engine.Every(time.Minute, time.Minute, func() bool {
			frac := 0.5 + 0.45*engine.Now().Hours()/horizon.Hours()
			nodes := cl.UpNodes()
			busy := int(frac * float64(len(nodes)))
			for i, n := range nodes {
				if i < busy {
					cl.SetUtil(n, 0.9)
				} else {
					cl.SetUtil(n, 0.05)
				}
			}
			return engine.Now() < horizon
		})

		var coolingWh float64
		hottest := 0.0
		violations := 0
		pipe := telemetry.NewPipeline(reg, db)
		engine.Every(30*time.Second, 30*time.Second, func() bool {
			pipe.Sample(engine.Now())
			coolingWh += plant.CoolingPowerW(engine.Now()) * 30 / 3600
			for _, p := range db.Latest("node.temp.celsius", nil) {
				if p.Value > hottest {
					hottest = p.Value
				}
				if p.Value > tempLimit {
					violations++
				}
			}
			return engine.Now() < horizon
		})

		cfg := powercase.DefaultConfig()
		cfg.TempLimitC = tempLimit
		ctl := powercase.New(cfg, db, plant)
		if v.enabled {
			loop := ctl.Loop()
			if v.gate > 0 {
				loop.Guards = []core.Guardrail{core.ConfidenceGate{Min: v.gate}}
			}
			// The loop runs under a fleet coordinator — same cadence, same
			// results (the coordinator's round is deterministic), and the
			// scenario is ready to take more facility-domain loops.
			coord := fleet.New(0)
			coord.Add(loop, powercase.FleetPriority)
			coord.RunEvery(sim.VirtualClock{Engine: engine}, 5*time.Minute,
				func() bool { return engine.Now() >= horizon })
		}
		engine.RunUntil(horizon)

		kwh := coolingWh / 1000
		if v.name == "static-setpoint" {
			staticKWh = kwh
		}
		saved := "-"
		if staticKWh > 0 && v.name != "static-setpoint" {
			saved = pct(staticKWh-kwh, staticKWh)
		}
		res.AddRow(v.name,
			fmt.Sprintf("%.1f°C", plant.SupplySetpointC()),
			fmt.Sprintf("%.1f", kwh),
			saved,
			fmt.Sprintf("%.1f°C", hottest),
			violations,
			fmt.Sprintf("%d/%d", ctl.Raises, ctl.Lowers),
		)
	}
	res.AddNote("diurnal load ramps 50%% -> 95%% of the fleet over %v; limit %.0f°C", horizon, tempLimit)
	res.AddNote("the loop must show energy savings with zero limit violations; the gate trades savings for margin")
	return res
}
