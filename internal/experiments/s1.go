package experiments

import (
	"fmt"

	"autoloop/internal/cases"
	"autoloop/internal/scenario"
)

func init() {
	register("EXP-S1", "Scenario engine: chaos-diverse facility runs scored for MTTR, FP rate, and efficiency (§V at scale)", runS1)
}

// runS1 drives the declarative scenario engine: each row is one scenario
// document run to its horizon against the full loop fleet, scored on the
// ground-truth fault schedule. Quick mode runs the small preset only; the
// full run adds the chaos-diverse midsize scenario with every injector in
// the library, including the phantom sensor flap.
func runS1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-S1",
		Title: "Declarative scenarios: fleet response under a chaos-diverse fault schedule",
		Claim: "operational data analytics ... feedback and response at facility scale (§V); " +
			"the fleet must detect and repair injected faults without chasing phantoms",
		Columns: []string{"scenario", "nodes", "faults", "detected", "responded",
			"mean-mttr", "fp-rate", "efficiency", "points"},
	}
	specs := []*scenario.Spec{scenario.Small(opt.Seed)}
	if !opt.Quick {
		specs = append(specs, scenario.Midsize(opt.Seed))
	}
	for _, spec := range specs {
		rep, err := scenario.Run(spec, cases.NewRegistry())
		if err != nil {
			res.AddNote("%s: %v", spec.Name, err)
			continue
		}
		s := rep.Scores
		res.Rows = append(res.Rows, []string{
			rep.Name,
			fmt.Sprintf("%d", rep.Nodes),
			fmt.Sprintf("%d", len(rep.Injections)),
			fmt.Sprintf("%d/%d", s.Detected, s.Windows),
			fmt.Sprintf("%d/%d", s.Responded, s.Windows),
			s.MeanMTTR.String(),
			fmt.Sprintf("%.3f", s.FPRate()),
			fmt.Sprintf("%.3f", s.Efficiency()),
			fmt.Sprintf("%d", rep.Points),
		})
		for _, o := range rep.Injections {
			if o.Phantom && o.Detected {
				res.AddNote("%s: phantom %s fooled the fleet (fp-rate %.3f reflects it)",
					rep.Name, o.Kind, s.FPRate())
			}
		}
	}
	return res
}
