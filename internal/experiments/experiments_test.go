package experiments

import (
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"EXP-A1", "EXP-A2", "EXP-A3", "EXP-A4", "EXP-C1",
		"EXP-F1", "EXP-F2a", "EXP-F2b", "EXP-F2c", "EXP-F3", "EXP-F3b",
		"EXP-S1",
		"EXP-U1", "EXP-U2", "EXP-U3", "EXP-U4", "EXP-X1",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if _, ok := Title(id); !ok {
			t.Errorf("missing title for %s", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("EXP-NOPE", quickOpt()); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "X", Title: "T", Claim: "C", Columns: []string{"a", "bb"}}
	r.AddRow("1", 2.5)
	r.AddRow("longer", "x,y")
	r.AddNote("n=%d", 3)
	table := r.Table()
	for _, want := range []string{"X — T", "paper: C", "longer", "2.5", "note: n=3"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, "a,bb\n") || !strings.Contains(csv, `"x,y"`) {
		t.Errorf("csv = %q", csv)
	}
}

func TestSchedWorkloadDeterministic(t *testing.T) {
	sc := defaultScenario(quickOpt())
	a := generateJobs(sc)
	b := generateJobs(sc)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].walltime != b[i].walltime || a[i].submitAt != b[i].submitAt {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

// TestF3ShapeHolds verifies the headline reproduction property: the loop
// beats the no-loop baseline on completions and resubmissions, and
// approaches the oracle.
func TestF3ShapeHolds(t *testing.T) {
	base := defaultScenario(quickOpt())
	noLoop := runSchedScenario(base)

	withLoop := defaultScenario(quickOpt())
	withLoop.LoopEnabled = true
	loop := runSchedScenario(withLoop)

	oracle := defaultScenario(quickOpt())
	oracle.Oracle = true
	orc := runSchedScenario(oracle)

	if loop.CompletedFirst <= noLoop.CompletedFirst {
		t.Errorf("loop completed-first %d should beat no-loop %d", loop.CompletedFirst, noLoop.CompletedFirst)
	}
	if loop.Resubmits >= noLoop.Resubmits {
		t.Errorf("loop resubmits %d should be below no-loop %d", loop.Resubmits, noLoop.Resubmits)
	}
	if loop.WastedNodeH >= noLoop.WastedNodeH {
		t.Errorf("loop wasted %.1f should be below no-loop %.1f", loop.WastedNodeH, noLoop.WastedNodeH)
	}
	if float64(loop.CompletedFirst) < 0.85*float64(orc.CompletedFirst) {
		t.Errorf("loop completed-first %d should approach oracle %d", loop.CompletedFirst, orc.CompletedFirst)
	}
}

// TestF2ShapesHold spot-checks the pattern claims without re-rendering the
// full tables.
func TestF2ShapesHold(t *testing.T) {
	res, err := Run("EXP-F2c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Master-worker must lose all coverage; coordinated must retain 75%.
	var mwAfter, coordAfter string
	for _, row := range res.Rows {
		switch {
		case row[0] == "master-worker":
			mwAfter = row[3]
		case row[0] == "coordinated":
			coordAfter = row[3]
		}
	}
	if mwAfter != "0.0%" {
		t.Errorf("master-worker coverage-after = %s, want 0.0%%", mwAfter)
	}
	if coordAfter != "75.0%" {
		t.Errorf("coordinated coverage-after = %s, want 75.0%%", coordAfter)
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in quick
// mode: no panics, non-empty tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, quickOpt())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("empty table")
			}
			if res.Claim == "" {
				t.Error("missing paper claim")
			}
			if len(res.Columns) == 0 {
				t.Error("missing columns")
			}
		})
	}
}

func TestPct(t *testing.T) {
	if pct(1, 2) != "50.0%" {
		t.Errorf("pct = %s", pct(1, 2))
	}
	if pct(1, 0) != "n/a" {
		t.Errorf("pct div0 = %s", pct(1, 0))
	}
}

func TestOscillationIndex(t *testing.T) {
	if got := oscillationIndex([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant oscillation = %v", got)
	}
	if got := oscillationIndex([]float64{0, 10, 0, 10}); got < 0.5 {
		t.Errorf("square-wave oscillation = %v, want large", got)
	}
	if got := oscillationIndex([]float64{1}); got != 0 {
		t.Errorf("single sample = %v", got)
	}
}
