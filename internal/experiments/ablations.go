package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"autoloop/internal/analytics"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
)

func init() {
	register("EXP-A1", "Knowledge ablation: historical run data and learned corrections (§III Analyze)", runA1)
	register("EXP-A2", "Confidence gating: action threshold sweep (§IV)", runA2)
	register("EXP-A3", "Human-in/on/off-the-loop response latency and outcomes (§IV)", runA3)
	register("EXP-A4", "Continual vs static models under workload drift (§IV lifelong AI)", runA4)
}

// runA1 ablates the K of MAPE-K in the Scheduler case: no knowledge, cold
// knowledge (learned within the run), and warm knowledge (pre-trained on a
// prior campaign of the same applications).
func runA1(opt Options) *Result {
	res := &Result{
		ID:    "EXP-A1",
		Title: "Scheduler loop with Knowledge off / cold / warm",
		Claim: "Analyze the progress relative to representative historical application run times; " +
			"prior Knowledge (running time, progress rate) informs the Plan",
		Columns: []string{"knowledge", "completed-all", "killed", "extensions", "pred-rel-err", "overext-nodeh"},
	}

	run := func(useKB bool, warm *knowledge.Base) schedOutcome {
		sc := defaultScenario(opt)
		sc.Hard = true // noisy, drifting applications: live fits alone mislead
		sc.LoopEnabled = true
		sc.LoopConfig.UseKnowledge = useKB
		sc.WarmKB = warm
		return runSchedScenario(sc)
	}

	addRow := func(name string, out schedOutcome) {
		res.AddRow(name,
			fmt.Sprintf("%d/%d", out.CompletedAll, out.Submitted),
			out.KilledWall,
			out.ExtGranted+out.ExtPartial,
			fmt.Sprintf("%.2f", out.Assess.MeanRelErr),
			fmt.Sprintf("%.1f", out.OverExtensionH),
		)
	}

	addRow("off", run(false, nil))
	cold := run(true, nil)
	addRow("cold", cold)
	// Warm: reuse the knowledge base produced by the cold campaign for a
	// second identical campaign, then a third.
	warm := run(true, cold.KB)
	addRow("warm (2nd campaign)", warm)
	addRow("warm (3rd campaign)", run(true, warm.KB))
	res.AddNote("off and cold coincide on first contact by construction: Knowledge pays off on repeat " +
		"workloads, which dominate production HPC — the warm rows show the learned corrections cutting over-extension")
	res.AddNote("pred-rel-err is the mean relative error of the loop's completion-time predictions at extension time")
	return res
}

// runA2 sweeps the confidence gate on extension actions: too low admits
// sloppy early extensions (over-extension), too high starves the loop.
func runA2(opt Options) *Result {
	res := &Result{
		ID:      "EXP-A2",
		Title:   "Confidence gate threshold sweep on the Scheduler loop",
		Claim:   "confidence measures are required as we move beyond human-in-the-loop decision-making",
		Columns: []string{"gate", "completed-all", "killed", "extensions", "vetoed", "overext-nodeh"},
	}
	for _, gate := range []float64{0, 0.70, 0.74, 0.80} {
		sc := defaultScenario(opt)
		sc.LoopEnabled = true
		sc.ConfidenceGate = gate
		out := runSchedScenario(sc)
		label := "none"
		if gate > 0 {
			label = fmt.Sprintf("%.2f", gate)
		}
		res.AddRow(label,
			fmt.Sprintf("%d/%d", out.CompletedAll, out.Submitted),
			out.KilledWall,
			out.ExtGranted+out.ExtPartial,
			out.Loop.VetoedActions,
			fmt.Sprintf("%.1f", out.OverExtensionH),
		)
	}
	res.AddNote("the gate combines forecast-interval tightness with the application's realized prediction accuracy")
	return res
}

// runA3 compares operating modes: autonomous, human-on-the-loop (notify,
// act immediately), human-in-the-loop (wait for approval), and
// human-in-the-loop with a contingency timer — quantifying "having a human
// in the loop limits the speed of response".
func runA3(opt Options) *Result {
	res := &Result{
		ID:    "EXP-A3",
		Title: "Operating-mode comparison on the Scheduler loop",
		Claim: "having a human in the loop limits the speed of response and consequently the " +
			"opportunities for feedback-driven improvements; human-on-the-loop continues without waiting",
		Columns: []string{"mode", "completed-all", "killed", "executed", "dropped",
			"mean-decision-latency", "notifications"},
	}
	human := core.HumanModel{
		Latency:      sim.LogNormal{MeanV: 25 * time.Minute, CV: 0.8},
		Availability: 0.7,
	}
	type variant struct {
		name   string
		mode   core.Mode
		human  core.HumanModel
		notify bool
	}
	variants := []variant{
		{"autonomous", core.Autonomous, core.HumanModel{}, false},
		{"human-on-the-loop", core.HumanOnTheLoop, core.HumanModel{}, true},
		{"human-in-the-loop", core.HumanInTheLoop, human, false},
		{"in-the-loop+contingency", core.HumanInTheLoop,
			core.HumanModel{Latency: human.Latency, Availability: human.Availability, ContingencyAfter: time.Hour}, false},
	}
	for _, v := range variants {
		sc := defaultScenario(opt)
		sc.LoopEnabled = true
		sc.LoopMode = v.mode
		sc.Human = v.human
		out := runSchedScenario(sc)
		notifications := 0
		if v.notify {
			notifications = out.Loop.ExecutedActions
		}
		res.AddRow(v.name,
			fmt.Sprintf("%d/%d", out.CompletedAll, out.Submitted),
			out.KilledWall,
			out.Loop.ExecutedActions,
			out.Loop.DroppedActions,
			out.MeanDecisionLatency.Truncate(time.Second).String(),
			notifications,
		)
	}
	res.AddNote("human model: log-normal 25m median response, 70%% availability; contingency executes after 1h of silence")
	res.AddNote("dropped actions are extension requests that never executed because the approver was absent")
	return res
}

// runA4 pits a static (frozen after warmup) forecaster against a continually
// updated one on a progress-rate series whose regime shifts mid-stream —
// §IV's argument that "the constantly evolving nature of the environment
// requires continual/lifelong AI".
func runA4(opt Options) *Result {
	res := &Result{
		ID:    "EXP-A4",
		Title: "Static vs continual forecasting across a workload regime shift",
		Claim: "simply applying present AI tools will not suffice: models must evolve with the " +
			"environment at small overhead (continual/lifelong learning)",
		Columns: []string{"model", "mape-before-shift", "mape-after-shift", "degradation"},
	}
	n := 2000
	if opt.Quick {
		n = 800
	}
	shift := n / 2
	rng := rand.New(rand.NewSource(opt.Seed))

	// The signal: per-iteration application throughput; the regime shift
	// models a library upgrade/system change altering both level and trend.
	signal := make([]float64, n)
	for i := range signal {
		base := 100 + 0.02*float64(i)
		if i >= shift {
			base = 160 - 0.03*float64(i-shift)
		}
		signal[i] = base + rng.NormFloat64()*3
	}

	type model struct {
		name     string
		frozen   bool
		forecast analytics.Forecaster
	}
	models := []model{
		{"static (frozen at warmup)", true, analytics.NewHolt(0.3, 0.1)},
		{"continual (always updating)", false, analytics.NewHolt(0.3, 0.1)},
		{"continual windowed OLS", false, analytics.NewWindowOLS(60)},
	}
	warmup := shift / 2
	for _, m := range models {
		var errBefore, errAfter []float64
		for i := 0; i < n-1; i++ {
			t := float64(i)
			if !m.frozen || i < warmup {
				m.forecast.Observe(t, signal[i])
			}
			if i < warmup {
				continue
			}
			pred := m.forecast.Predict(1)
			if !pred.OK() {
				continue
			}
			actual := signal[i+1]
			relErr := math.Abs(pred.Value-actual) / math.Abs(actual)
			if i+1 < shift {
				errBefore = append(errBefore, relErr)
			} else if i+1 >= shift+50 { // skip the immediate transient
				errAfter = append(errAfter, relErr)
			}
		}
		before, after := meanF(errBefore), meanF(errAfter)
		res.AddRow(m.name,
			fmt.Sprintf("%.3f", before),
			fmt.Sprintf("%.3f", after),
			fmt.Sprintf("%.1fx", after/math.Max(before, 1e-9)),
		)
	}
	res.AddNote("regime shift at sample %d changes level and inverts the trend; static models never see it", shift)
	return res
}
