package experiments

import (
	"fmt"
	"time"

	"autoloop/internal/app"
	"autoloop/internal/cases/ostcase"
	"autoloop/internal/fleet"
	"autoloop/internal/pfs"
	"autoloop/internal/sched"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

func init() {
	register("EXP-U3", "OST use case: avoid a degraded OST by close/reopen (§III case 3)", runU3)
}

// runU3 degrades one OST under an I/O-heavy workload and compares
// application I/O latency and runtime with and without the avoidance loop.
func runU3(opt Options) *Result {
	res := &Result{
		ID:    "EXP-U3",
		Title: "One of 16 OSTs degrades 20x at t=10m under striped writers",
		Claim: "close files using a poorly performing OST and reopen them using different OSTs",
		Columns: []string{"mode", "response-at", "io-p50-after-ms", "io-p99-after-ms",
			"mean-job-runtime", "reopen-actions"},
	}
	writers := 6
	iters := 360
	if opt.Quick {
		writers = 4
		iters = 180
	}
	degradeAt := 10 * time.Minute

	for _, withLoop := range []bool{false, true} {
		engine := sim.NewEngine(opt.Seed)
		db := tsdb.New(0)
		fs := pfs.New(engine, pfs.Config{OSTs: 16, OSTBandwidthMBps: 400, DefaultStripeCount: 8})
		nodes := make([]string, writers)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%03d", i)
		}
		scheduler := sched.New(engine, nodes, sched.DefaultExtensionPolicy())
		runtime := app.NewRuntime(engine, db, fs, nil)
		runtime.OnComplete = func(inst *app.Instance) { scheduler.JobFinished(inst.Job.ID) }
		scheduler.SetHooks(runtime.Start, runtime.Kill)
		pipe := telemetry.NewPipeline(telemetry.NewRegistryOf(fs.Collector()), db)
		engine.Every(30*time.Second, 30*time.Second, func() bool {
			pipe.Sample(engine.Now())
			return scheduler.QueueLen() > 0 || len(scheduler.Running()) > 0
		})
		var ctl *ostcase.Controller
		if withLoop {
			ctl = ostcase.New(ostcase.DefaultConfig(), db, scheduler, runtime)
			coord := fleet.New(0)
			coord.Add(ctl.Loop(), ostcase.FleetPriority)
			coord.RunEvery(sim.VirtualClock{Engine: engine}, time.Minute,
				func() bool { return len(scheduler.Running()) == 0 && scheduler.QueueLen() == 0 })
		}
		var jobs []*sched.Job
		for i := 0; i < writers; i++ {
			name := fmt.Sprintf("writer%02d", i)
			runtime.RegisterSpec(name, app.Spec{
				Name: name, TotalIters: iters, IterTime: sim.Constant{V: 10 * time.Second},
				IOEvery: 3, IOSizeMB: 800, StripeCount: 8,
			})
			j, err := scheduler.Submit(name, "u", 1, 24*time.Hour, 0)
			if err != nil {
				panic(err)
			}
			jobs = append(jobs, j)
		}
		engine.At(degradeAt, func() { _ = fs.SetOSTHealth(3, 0.05) })
		engine.Run()

		// I/O latency after the degradation, from the apps' own telemetry,
		// windowed through the shared fill-buffer query surface.
		after := db.WindowInto(nil, "app.io.lat_ms", nil, degradeAt, engine.Now())
		var runtimeSum time.Duration
		for _, j := range jobs {
			runtimeSum += j.End - j.Start
		}
		mode := "no-loop"
		responseAt := "-"
		reopens := 0
		if withLoop {
			mode = "autonomy-loop"
			reopens = ctl.Responses
			if len(ctl.Avoided()) > 0 {
				responseAt = "< 3m after onset"
			}
		}
		res.AddRow(mode, responseAt,
			fmt.Sprintf("%.0f", tsdb.Percentile(after, 0.5)),
			fmt.Sprintf("%.0f", tsdb.Percentile(after, 0.99)),
			(runtimeSum / time.Duration(len(jobs))).Truncate(time.Second).String(),
			reopens,
		)
	}
	res.AddNote("writers stripe 800MB bursts over 8 of 16 OSTs; the slowest stripe gates each write")
	return res
}
