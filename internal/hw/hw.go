// Package hw models the hardware plane of a simulated HPC system: nodes
// grouped into racks, with per-node utilization, memory, power, and
// temperature models, hardware sensors exposed as telemetry collectors, and
// failure injection.
//
// The model is deliberately first-order — power is idle+dynamic·utilization,
// temperature follows an RC response toward a power-dependent steady state —
// because the autonomy loops only require signals with realistic structure
// (correlations across domains, inertia, noise), not cycle-accurate hardware.
package hw

import (
	"fmt"
	"math"
	"sort"
	"time"

	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
)

// NodeState describes the operational state of a node.
type NodeState int

// Node states.
const (
	NodeUp NodeState = iota
	NodeDown
	NodeDrain // running work finishes but nothing new is placed
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDown:
		return "down"
	case NodeDrain:
		return "drain"
	}
	return "unknown"
}

// Config describes the homogeneous hardware of a cluster.
type Config struct {
	Nodes        int
	NodesPerRack int
	CoresPerNode int
	MemGBPerNode float64

	IdlePowerW    float64 // per node at zero utilization
	DynamicPowerW float64 // additional per node at full utilization

	AmbientC    float64 // facility ambient temperature
	ThermalRes  float64 // °C per watt at steady state
	ThermalTauS float64 // RC time constant, seconds
	SensorNoise float64 // stddev of multiplicative sensor noise
}

// DefaultConfig returns a small but realistic configuration: 64 nodes,
// 8 per rack, 64 cores each.
func DefaultConfig() Config {
	return Config{
		Nodes:         64,
		NodesPerRack:  8,
		CoresPerNode:  64,
		MemGBPerNode:  256,
		IdlePowerW:    120,
		DynamicPowerW: 380,
		AmbientC:      22,
		ThermalRes:    0.08,
		ThermalTauS:   90,
		SensorNoise:   0.01,
	}
}

// Node is one compute node.
type Node struct {
	ID    string
	Rack  string
	State NodeState

	Cores     int
	CoresUsed int
	MemGB     float64
	MemUsedGB float64

	// util is the instantaneous CPU utilization in [0,1] driven by the
	// applications currently running on the node.
	util float64
	// tempC is the simulated component temperature with first-order inertia.
	tempC      float64
	lastUpdate time.Duration
	// thermalMult scales the node's thermal resistance; > 1 models a fan or
	// heatsink fault (failure injection for the holistic experiments).
	thermalMult float64
	// sensorMult biases the node's reported temperature without changing the
	// physical model: != 1 models a miscalibrated or flapping sensor, the
	// false-positive pressure source of the scenario engine.
	sensorMult float64
}

// Cluster owns the node fleet.
type Cluster struct {
	cfg    Config
	engine *sim.Engine
	nodes  []*Node
	byID   map[string]*Node
}

// New builds a cluster per cfg, attached to engine for time and randomness.
func New(engine *sim.Engine, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: config requires at least one node")
	}
	if cfg.NodesPerRack <= 0 {
		cfg.NodesPerRack = cfg.Nodes
	}
	c := &Cluster{cfg: cfg, engine: engine, byID: make(map[string]*Node, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:          fmt.Sprintf("n%03d", i),
			Rack:        fmt.Sprintf("r%02d", i/cfg.NodesPerRack),
			Cores:       cfg.CoresPerNode,
			MemGB:       cfg.MemGBPerNode,
			tempC:       cfg.AmbientC,
			thermalMult: 1,
			sensorMult:  1,
		}
		c.nodes = append(c.nodes, n)
		c.byID[n.ID] = n
	}
	return c
}

// Config returns the cluster's hardware configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the node fleet in ID order. Callers must not mutate state
// except through the cluster's methods.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node looks a node up by ID.
func (c *Cluster) Node(id string) (*Node, bool) {
	n, ok := c.byID[id]
	return n, ok
}

// UpNodes returns the IDs of nodes currently accepting work.
func (c *Cluster) UpNodes() []string {
	var ids []string
	for _, n := range c.nodes {
		if n.State == NodeUp {
			ids = append(ids, n.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// SetState transitions a node's operational state; unknown IDs are an error.
func (c *Cluster) SetState(id string, s NodeState) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	n.State = s
	if s == NodeDown {
		n.CoresUsed = 0
		n.MemUsedGB = 0
		n.util = 0
	}
	return nil
}

// Allocate reserves cores and memory on a node for a job, returning an error
// if the node lacks capacity or is not up.
func (c *Cluster) Allocate(id string, cores int, memGB float64) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if n.State != NodeUp {
		return fmt.Errorf("cluster: node %s is %s", id, n.State)
	}
	if n.CoresUsed+cores > n.Cores {
		return fmt.Errorf("cluster: node %s has %d free cores, need %d", id, n.Cores-n.CoresUsed, cores)
	}
	if n.MemUsedGB+memGB > n.MemGB {
		return fmt.Errorf("cluster: node %s has %.0fGB free, need %.0fGB", id, n.MemGB-n.MemUsedGB, memGB)
	}
	n.CoresUsed += cores
	n.MemUsedGB += memGB
	return nil
}

// Release returns cores and memory allocated by Allocate.
func (c *Cluster) Release(id string, cores int, memGB float64) {
	n, ok := c.byID[id]
	if !ok {
		return
	}
	n.CoresUsed -= cores
	if n.CoresUsed < 0 {
		n.CoresUsed = 0
	}
	n.MemUsedGB -= memGB
	if n.MemUsedGB < 0 {
		n.MemUsedGB = 0
	}
}

// SetUtil sets a node's instantaneous CPU utilization (clamped to [0,1]),
// normally driven by the application framework.
func (c *Cluster) SetUtil(id string, util float64) {
	n, ok := c.byID[id]
	if !ok {
		return
	}
	c.advanceThermal(n)
	n.util = math.Max(0, math.Min(1, util))
}

// Util returns a node's current utilization.
func (c *Cluster) Util(id string) float64 {
	if n, ok := c.byID[id]; ok {
		return n.util
	}
	return 0
}

// PowerW returns the node's instantaneous electrical power draw.
func (n *Node) PowerW(cfg Config) float64 {
	if n.State == NodeDown {
		return 0
	}
	return cfg.IdlePowerW + cfg.DynamicPowerW*n.util
}

// advanceThermal moves the node temperature toward its power-dependent
// steady state with first-order dynamics since the last update.
func (c *Cluster) advanceThermal(n *Node) {
	now := c.engine.Now()
	dt := (now - n.lastUpdate).Seconds()
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	target := c.cfg.AmbientC + c.cfg.ThermalRes*n.thermalMult*n.PowerW(c.cfg)
	alpha := 1 - math.Exp(-dt/c.cfg.ThermalTauS)
	n.tempC += (target - n.tempC) * alpha
}

// SetAmbient changes the inlet-air temperature every node cools against,
// coupling the facility's supply-air setpoint into the hardware thermal
// model (raising the setpoint saves cooling energy but heats components).
// All node temperatures are advanced before the change takes effect.
func (c *Cluster) SetAmbient(ambientC float64) {
	for _, n := range c.nodes {
		c.advanceThermal(n)
	}
	c.cfg.AmbientC = ambientC
}

// Ambient returns the current inlet-air temperature.
func (c *Cluster) Ambient() float64 { return c.cfg.AmbientC }

// SetThermalFault scales a node's effective thermal resistance; multiplier 1
// is healthy, larger values model cooling faults (failed fans, blocked
// airflow) that drive the component temperature far above the fleet.
func (c *Cluster) SetThermalFault(id string, multiplier float64) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if multiplier < 0.1 {
		multiplier = 0.1
	}
	c.advanceThermal(n)
	n.thermalMult = multiplier
	return nil
}

// SetSensorFault biases the reported (not physical) temperature of a node by
// a multiplicative factor; 1 is a healthy sensor. Flapping sensors toggle the
// factor on and off to inject false-positive pressure: the thermal model is
// untouched, only the telemetry lies.
func (c *Cluster) SetSensorFault(id string, multiplier float64) error {
	n, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if multiplier < 0.1 {
		multiplier = 0.1
	}
	n.sensorMult = multiplier
	return nil
}

// TotalPowerW sums instantaneous power over the fleet (IT power, feeding the
// facility model).
func (c *Cluster) TotalPowerW() float64 {
	total := 0.0
	for _, n := range c.nodes {
		total += n.PowerW(c.cfg)
	}
	return total
}

// Collector returns a telemetry collector emitting, per up node:
// node.cpu.util, node.power.watts, node.temp.celsius, node.mem.used_gb,
// node.cores.used — the "System Hardware" sensor domain of Fig. 1.
func (c *Cluster) Collector() telemetry.Collector {
	return telemetry.CollectorFunc(func(now time.Duration) []telemetry.Point {
		pts := make([]telemetry.Point, 0, len(c.nodes)*5)
		for _, n := range c.nodes {
			if n.State == NodeDown {
				continue
			}
			c.advanceThermal(n)
			labels := telemetry.Labels{"node": n.ID, "rack": n.Rack}
			noise := func() float64 {
				if c.cfg.SensorNoise <= 0 {
					return 1
				}
				return 1 + c.engine.Rand().NormFloat64()*c.cfg.SensorNoise
			}
			pts = append(pts,
				telemetry.Point{Name: "node.cpu.util", Labels: labels, Time: now, Value: clamp01(n.util * noise())},
				telemetry.Point{Name: "node.power.watts", Labels: labels, Time: now, Value: n.PowerW(c.cfg) * noise()},
				telemetry.Point{Name: "node.temp.celsius", Labels: labels, Time: now, Value: n.tempC * n.sensorMult * noise()},
				telemetry.Point{Name: "node.mem.used_gb", Labels: labels, Time: now, Value: n.MemUsedGB},
				telemetry.Point{Name: "node.cores.used", Labels: labels, Time: now, Value: float64(n.CoresUsed)},
			)
		}
		return pts
	})
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
