package hw

import (
	"testing"
	"time"

	"autoloop/internal/sim"
)

func newTestCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.NodesPerRack = 2
	cfg.SensorNoise = 0
	return e, New(e, cfg)
}

func TestNewAssignsRacks(t *testing.T) {
	_, c := newTestCluster(t)
	nodes := c.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0].Rack != "r00" || nodes[3].Rack != "r01" {
		t.Errorf("rack assignment: %s %s", nodes[0].Rack, nodes[3].Rack)
	}
	if _, ok := c.Node("n002"); !ok {
		t.Error("lookup n002 failed")
	}
	if _, ok := c.Node("bogus"); ok {
		t.Error("lookup bogus succeeded")
	}
}

func TestNewZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(sim.NewEngine(1), Config{})
}

func TestAllocateReleaseAccounting(t *testing.T) {
	_, c := newTestCluster(t)
	if err := c.Allocate("n000", 32, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate("n000", 32, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate("n000", 1, 0); err == nil {
		t.Error("expected core exhaustion error")
	}
	c.Release("n000", 32, 100)
	if err := c.Allocate("n000", 16, 50); err != nil {
		t.Errorf("after release: %v", err)
	}
	n, _ := c.Node("n000")
	if n.CoresUsed != 48 {
		t.Errorf("CoresUsed = %d, want 48", n.CoresUsed)
	}
}

func TestAllocateMemoryLimit(t *testing.T) {
	_, c := newTestCluster(t)
	if err := c.Allocate("n000", 1, 300); err == nil {
		t.Error("expected memory exhaustion error (node has 256GB)")
	}
}

func TestAllocateUnknownAndDownNodes(t *testing.T) {
	_, c := newTestCluster(t)
	if err := c.Allocate("nope", 1, 1); err == nil {
		t.Error("expected error for unknown node")
	}
	if err := c.SetState("n001", NodeDown); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate("n001", 1, 1); err == nil {
		t.Error("expected error for down node")
	}
	if err := c.SetState("nope", NodeUp); err == nil {
		t.Error("expected error for unknown node state change")
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	_, c := newTestCluster(t)
	c.Release("n000", 100, 100)
	n, _ := c.Node("n000")
	if n.CoresUsed != 0 || n.MemUsedGB != 0 {
		t.Errorf("release went negative: %d cores, %.0f GB", n.CoresUsed, n.MemUsedGB)
	}
}

func TestUpNodesExcludesDownAndDrain(t *testing.T) {
	_, c := newTestCluster(t)
	_ = c.SetState("n001", NodeDown)
	_ = c.SetState("n002", NodeDrain)
	up := c.UpNodes()
	if len(up) != 2 || up[0] != "n000" || up[1] != "n003" {
		t.Errorf("UpNodes = %v", up)
	}
}

func TestDownNodeClearsUsage(t *testing.T) {
	_, c := newTestCluster(t)
	_ = c.Allocate("n000", 8, 10)
	c.SetUtil("n000", 0.5)
	_ = c.SetState("n000", NodeDown)
	n, _ := c.Node("n000")
	if n.CoresUsed != 0 || n.util != 0 {
		t.Error("down node retained usage")
	}
}

func TestPowerModel(t *testing.T) {
	e, c := newTestCluster(t)
	cfg := c.Config()
	n, _ := c.Node("n000")
	if got := n.PowerW(cfg); got != cfg.IdlePowerW {
		t.Errorf("idle power = %v, want %v", got, cfg.IdlePowerW)
	}
	c.SetUtil("n000", 1.0)
	if got := n.PowerW(cfg); got != cfg.IdlePowerW+cfg.DynamicPowerW {
		t.Errorf("full power = %v", got)
	}
	_ = e
	// Total power: 1 node at full + 3 idle.
	want := 4*cfg.IdlePowerW + cfg.DynamicPowerW
	if got := c.TotalPowerW(); got != want {
		t.Errorf("TotalPowerW = %v, want %v", got, want)
	}
}

func TestThermalApproachesSteadyState(t *testing.T) {
	e, c := newTestCluster(t)
	cfg := c.Config()
	c.SetUtil("n000", 1.0)
	// Sample repeatedly so the thermal state advances with the clock.
	col := c.Collector()
	for i := 1; i <= 60; i++ {
		e.RunUntil(time.Duration(i) * 30 * time.Second)
		col.Collect(e.Now())
	}
	n, _ := c.Node("n000")
	target := cfg.AmbientC + cfg.ThermalRes*(cfg.IdlePowerW+cfg.DynamicPowerW)
	if n.tempC < target-1 || n.tempC > target+1 {
		t.Errorf("temp = %.1f, want ~%.1f after 30min", n.tempC, target)
	}
	// Idle node stays near ambient.
	idle, _ := c.Node("n003")
	idleTarget := cfg.AmbientC + cfg.ThermalRes*cfg.IdlePowerW
	if idle.tempC < cfg.AmbientC-1 || idle.tempC > idleTarget+1 {
		t.Errorf("idle temp = %.1f, want within [%.1f, %.1f]", idle.tempC, cfg.AmbientC, idleTarget)
	}
}

func TestCollectorEmitsPerUpNode(t *testing.T) {
	e, c := newTestCluster(t)
	_ = c.SetState("n001", NodeDown)
	pts := c.Collector().Collect(e.Now())
	if len(pts) != 3*5 {
		t.Fatalf("got %d points, want 15 (3 up nodes x 5 metrics)", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Name] = true
		if p.Labels["node"] == "n001" {
			t.Error("down node must not report")
		}
	}
	for _, name := range []string{"node.cpu.util", "node.power.watts", "node.temp.celsius", "node.mem.used_gb", "node.cores.used"} {
		if !seen[name] {
			t.Errorf("missing metric %s", name)
		}
	}
}

func TestSetUtilClamps(t *testing.T) {
	_, c := newTestCluster(t)
	c.SetUtil("n000", 1.7)
	if got := c.Util("n000"); got != 1 {
		t.Errorf("util = %v, want clamped 1", got)
	}
	c.SetUtil("n000", -0.3)
	if got := c.Util("n000"); got != 0 {
		t.Errorf("util = %v, want clamped 0", got)
	}
	if got := c.Util("ghost"); got != 0 {
		t.Errorf("unknown node util = %v", got)
	}
}

func TestNodeStateString(t *testing.T) {
	if NodeUp.String() != "up" || NodeDown.String() != "down" || NodeDrain.String() != "drain" {
		t.Error("NodeState.String")
	}
	if NodeState(42).String() != "unknown" {
		t.Error("unknown NodeState.String")
	}
}
