// Package gateway is the public HTTP serving surface of the ODA plane: the
// front end real site tooling integrates against (paper question (ii), and
// the pattern both DCDB Wintermute and Netti et al.'s production ODA report
// converge on). It exposes, over plain net/http:
//
//   - the query plane: POST/GET /v1/query answering the same
//     tsdb.QueryRequest vocabulary the bus service speaks — range, instant
//     (latest), and rollup reads. Identical in-flight queries are coalesced
//     through a singleflight layer, and the hot range path encodes straight
//     from the store's QueryVisit stream into the response buffer: no
//     intermediate []WireSeries is materialized.
//   - the control plane: POST /v1/control/<op> for every control.v1 op
//     (list, get, cases, spawn, pause, resume, drain, remove, set-mode,
//     set-guard, pending) plus approve/deny verdicts, delegating to
//     control.Service. Bearer tokens split read-only from operator access.
//   - live subscriptions: GET /v1/stream serves server-sent events for any
//     bus topic patterns (findings, approvals, fleet rounds, telemetry),
//     fanned out through a hub with per-client bounded outboxes — an idle
//     subscriber costs one buffered channel, a slow one drops events and
//     sees its dropped counter, and the bus is never backpressured.
//   - self-telemetry: GET /healthz and GET /metrics (Prometheus text
//     format) covering gateway, bus, pipeline, TSDB, WAL, and TCP-bridge
//     counters.
//
// The wire vocabulary under /v1 is additive-only, like control.v1: new
// endpoints and new optional fields may appear within the version, breaking
// changes go to /v2.
package gateway

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/cluster"
	"autoloop/internal/control"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
	"autoloop/internal/wal"
)

// maxBodyBytes bounds one request body (queries and control requests are
// small; loop specs are the largest legitimate payload).
const maxBodyBytes = 1 << 20

// Store is the query surface the gateway serves: the zero-copy half of the
// telemetry querier plus rollup reads. *tsdb.DB implements it.
type Store interface {
	telemetry.Querier
	QueryRollup(metric string, matcher telemetry.Labels, step time.Duration, agg tsdb.Agg, from, to time.Duration) ([]telemetry.Series, bool)
}

// Role is an authenticated caller's capability level.
type Role int

const (
	// RoleNone is an unauthenticated (or unknown-token) caller.
	RoleNone Role = iota
	// RoleRead may query, stream, and read metrics and control state.
	RoleRead
	// RoleOperator may additionally mutate the control plane (spawn,
	// lifecycle ops, set-mode, set-guard, approve/deny).
	RoleOperator
)

// Options configures a Gateway. Store (or Cluster, on a coordinator) is
// required for the query plane; every other field is optional — nil
// subsystems simply disable their endpoints or metrics rows.
type Options struct {
	// Store answers /v1/query from a local TSDB. Required unless Cluster is
	// set.
	Store Store
	// Control answers /v1/control/<op>; nil returns 503 there (unless
	// Cluster serves the control plane instead).
	Control *control.Service
	// Cluster, when set, makes this gateway a coordinator front end:
	// /v1/control/<op> routes through the cluster coordinator (placement,
	// scatter-gather, members), /v1/query scatter-gathers across workers
	// when no local Store is present, and /metrics gains the cluster rows.
	Cluster *cluster.Coordinator
	// Bus feeds /v1/stream subscriptions and bus metrics; nil returns 503
	// on /v1/stream.
	Bus *bus.Bus
	// Pipeline, WAL, and WireServer contribute rows to /metrics when set.
	Pipeline   *telemetry.Pipeline
	WAL        *wal.WAL
	WireServer *bus.Server

	// ReadTokens and OperatorTokens are the accepted bearer tokens per
	// role (operator tokens also pass read checks). With both lists empty
	// the gateway is open: every caller is an operator — the dev-mode
	// default, matching the raw TCP bridge.
	ReadTokens     []string
	OperatorTokens []string

	// OutboxDepth is the per-SSE-client outbox capacity (default 256).
	OutboxDepth int
	// ReplayDepth is how many recent events the stream hub retains for
	// Last-Event-ID replay (default 1024).
	ReplayDepth int
}

// Stats is a snapshot of the gateway's own counters.
type Stats struct {
	Requests      uint64 // HTTP requests served (all endpoints)
	Errors        uint64 // requests answered with a 4xx/5xx status
	Coalesced     uint64 // /v1/query requests that joined an in-flight identical query
	Gzipped       uint64 // /v1/query responses served gzip-encoded
	StreamClients int64  // currently connected SSE subscribers
	StreamEvents  uint64 // events fanned out to SSE outboxes
	StreamDropped uint64 // events dropped at full SSE outboxes
}

// Gateway serves the HTTP query/control/stream surface. Build one with New,
// then either Serve (own listener) or mount Handler on an existing server.
type Gateway struct {
	opts Options
	hub  *Hub
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener

	flight flightGroup

	requests  atomic.Uint64
	errors    atomic.Uint64
	coalesced atomic.Uint64
	gzipped   atomic.Uint64
}

// New builds a gateway over the given subsystems.
func New(opts Options) *Gateway {
	if opts.Store == nil && opts.Cluster == nil {
		panic("gateway: Options.Store is required (or Options.Cluster on a coordinator)")
	}
	g := &Gateway{opts: opts}
	if opts.Bus != nil {
		g.hub = NewHub(opts.Bus, opts.ReplayDepth)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.authed(RoleRead, g.handleMetrics))
	mux.HandleFunc("/v1/query", g.authed(RoleRead, g.handleQuery))
	mux.HandleFunc("/v1/stream", g.authed(RoleRead, g.handleStream))
	mux.HandleFunc("/v1/control/", g.handleControl) // role depends on the op
	g.mux = mux
	return g
}

// Handler returns the gateway's HTTP handler, for mounting on an existing
// server or for tests.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Serve starts listening on addr (e.g. "127.0.0.1:8080") and serves in a
// background goroutine. Close stops it.
func (g *Gateway) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g.ln = ln
	g.srv = &http.Server{Handler: g.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = g.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address after Serve.
func (g *Gateway) Addr() string {
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Close stops the listener, terminates open connections (including SSE
// streams), and detaches the stream hub from the bus.
func (g *Gateway) Close() error {
	if g.hub != nil {
		g.hub.Close()
	}
	if g.srv != nil {
		return g.srv.Close()
	}
	return nil
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Requests:  g.requests.Load(),
		Errors:    g.errors.Load(),
		Coalesced: g.coalesced.Load(),
		Gzipped:   g.gzipped.Load(),
	}
	if g.hub != nil {
		s.StreamClients = g.hub.Clients()
		s.StreamEvents = g.hub.Events()
		s.StreamDropped = g.hub.Dropped()
	}
	return s
}

// role authenticates one request. Open mode (no tokens configured) grants
// operator to everyone; otherwise the bearer token (Authorization header,
// or ?token= for EventSource clients that cannot set headers) selects the
// role, and unknown tokens get RoleNone.
func (g *Gateway) role(r *http.Request) Role {
	if len(g.opts.ReadTokens) == 0 && len(g.opts.OperatorTokens) == 0 {
		return RoleOperator
	}
	tok := bearerToken(r)
	if tok == "" {
		return RoleNone
	}
	for _, t := range g.opts.OperatorTokens {
		if t != "" && subtle.ConstantTimeCompare([]byte(t), []byte(tok)) == 1 {
			return RoleOperator
		}
	}
	for _, t := range g.opts.ReadTokens {
		if t != "" && subtle.ConstantTimeCompare([]byte(t), []byte(tok)) == 1 {
			return RoleRead
		}
	}
	return RoleNone
}

func bearerToken(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
		return ""
	}
	return r.URL.Query().Get("token")
}

// authed wraps h with request counting and a minimum-role check.
func (g *Gateway) authed(need Role, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g.requests.Add(1)
		if !g.require(w, r, need) {
			return
		}
		h(w, r)
	}
}

// require enforces the minimum role, writing 401/403 on failure.
func (g *Gateway) require(w http.ResponseWriter, r *http.Request, need Role) bool {
	have := g.role(r)
	switch {
	case have >= need:
		return true
	case have == RoleNone:
		w.Header().Set("WWW-Authenticate", `Bearer realm="autoloop"`)
		g.httpError(w, http.StatusUnauthorized, "missing or unknown bearer token")
	default:
		g.httpError(w, http.StatusForbidden, "operator role required")
	}
	return false
}

// httpError writes a JSON error body with the given status and counts it.
func (g *Gateway) httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	g.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, `{"error":%s}`+"\n", msg)
}

// writeJSON marshals v with the given status.
func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	if status >= 400 {
		g.errors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handleHealthz is the (unauthenticated) liveness probe.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok"}`+"\n")
}
