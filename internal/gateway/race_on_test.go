//go:build race

package gateway

// raceEnabled skips the steady-state allocation gates under the race
// detector, whose instrumentation itself allocates.
const raceEnabled = true
