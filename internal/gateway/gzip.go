package gateway

import (
	"compress/gzip"
	"net/http"
	"strings"
	"sync"
)

// gzipMinBytes is the smallest response body worth compressing: below it
// the gzip header/trailer overhead and the extra CPU beat any wire saving.
const gzipMinBytes = 1 << 10

// gzipPool recycles gzip writers across responses — a gzip.Writer carries
// ~200KB of deflate state, far too much to allocate per request.
var gzipPool = sync.Pool{
	New: func() interface{} {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// acceptsGzip reports whether the request advertises gzip support. A quality
// value of zero ("gzip;q=0") is an explicit refusal.
func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc = strings.TrimSpace(enc)
		name, params, _ := strings.Cut(enc, ";")
		if !strings.EqualFold(strings.TrimSpace(name), "gzip") {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if strings.TrimLeft(q, "0.") == "" {
				return false
			}
		}
		return true
	}
	return false
}

// writeMaybeGzip writes body to w, gzip-encoded when the client accepts it
// and the payload is big enough to win. Small responses and clients without
// Accept-Encoding: gzip keep the identity path — and its zero-allocation
// guarantee — untouched.
func (g *Gateway) writeMaybeGzip(w http.ResponseWriter, r *http.Request, body []byte) {
	if len(body) < gzipMinBytes || !acceptsGzip(r) {
		_, _ = w.Write(body)
		return
	}
	zw := gzipPool.Get().(*gzip.Writer)
	defer gzipPool.Put(zw)
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	zw.Reset(w)
	if _, err := zw.Write(body); err != nil {
		return // client went away mid-body; nothing to salvage
	}
	_ = zw.Close()
	g.gzipped.Add(1)
}
