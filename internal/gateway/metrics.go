package gateway

import (
	"fmt"
	"net/http"
	"strings"
)

// dbStats is the optional introspection surface a Store may offer for
// /metrics; *tsdb.DB implements it.
type dbStats interface {
	NumSeries() int
	Appended() uint64
}

// handleMetrics serves the self-telemetry counters in Prometheus text
// exposition format: the gateway's own request/stream counters plus
// whichever subsystems the gateway was built over (bus, telemetry
// pipeline, TSDB, WAL, TCP bridge).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var b strings.Builder
	row := func(name string, v interface{}) {
		fmt.Fprintf(&b, "%s %v\n", name, v)
	}

	s := g.Stats()
	row("gateway_requests_total", s.Requests)
	row("gateway_request_errors_total", s.Errors)
	row("gateway_queries_coalesced_total", s.Coalesced)
	row("gateway_queries_gzipped_total", s.Gzipped)
	row("gateway_sse_clients", s.StreamClients)
	row("gateway_sse_events_total", s.StreamEvents)
	row("gateway_sse_dropped_total", s.StreamDropped)

	if db, ok := g.opts.Store.(dbStats); ok {
		row("tsdb_series", db.NumSeries())
		row("tsdb_appended_total", db.Appended())
	}
	if bu := g.opts.Bus; bu != nil {
		published, delivered := bu.Stats()
		row("bus_published_total", published)
		row("bus_delivered_total", delivered)
		row("bus_expired_dropped_total", bu.ExpiredDropped())
	}
	if p := g.opts.Pipeline; p != nil {
		samples, points, errs := p.Stats()
		row("pipeline_samples_total", samples)
		row("pipeline_points_total", points)
		row("pipeline_sink_errors_total", errs)
	}
	if wa := g.opts.WAL; wa != nil {
		m := wa.Metrics()
		row("wal_appends_total", m.Appends)
		row("wal_bytes_total", m.Bytes)
		row("wal_syncs_total", m.Syncs)
		row("wal_rotations_total", m.Rotations)
		row("wal_truncated_bytes_total", m.Truncated)
		row("wal_storage_faults_total", m.StorageFaults)
		row("wal_write_retries_total", m.WriteRetries)
		row("wal_backlog_rejects_total", m.BacklogRejects)
	}
	if srv := g.opts.WireServer; srv != nil {
		row("bus_wire_clients", srv.NumClients())
		row("bus_wire_dropped_frames_total", srv.DroppedFrames())
		row("bus_wire_read_errors_total", srv.ReadErrors())
	}
	if cl := g.opts.Cluster; cl != nil {
		cs := cl.Stats()
		row("cluster_members", cs.Members)
		row("cluster_members_alive", cs.Alive)
		row("cluster_members_suspect", cs.Suspect)
		row("cluster_specs", cs.Specs)
		row("cluster_specs_placed", cs.Placed)
		row("cluster_assigns_total", cs.Assigns)
		row("cluster_failovers_total", cs.Failovers)
		row("cluster_lease_expiries_total", cs.LeaseExpiries)
		row("cluster_fanouts_total", cs.Fanouts)
		row("cluster_fanout_timeouts_total", cs.FanTimeouts)
		row("cluster_digests_total", cs.DigestsSeen)
		row("cluster_digests_denied_total", cs.DigestsDenied)
		row("cluster_digests_backfilled_total", cs.DigestsBackfilled)
		row("cluster_suspect_events_total", cs.SuspectEvents)
		row("cluster_scatter_partial_total", cs.ScatterPartials)
		row("cluster_ledger_faults_total", cs.LedgerFaults)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}
