package gateway

import (
	"encoding/json"
	"math"
	"strconv"
	"sync"
	"time"

	"autoloop/internal/telemetry"
)

// encoder builds one /v1/query response body directly in a reusable byte
// buffer. The range hot path appends samples from inside the store's
// QueryVisit callback, so the response is encoded straight off the live
// shard windows — no intermediate []WireSeries (or any per-series copy) is
// materialized. The JSON shape matches tsdb.QueryResponse exactly, so bus
// and HTTP clients parse one vocabulary.
//
// Encoders are pooled; with warm buffers an encode performs no allocations
// (gated by TestGatewayEncodeAllocs).
type encoder struct {
	buf    []byte
	keys   []string          // label-key sort scratch
	pts    []telemetry.Point // LatestInto scratch
	series int               // series emitted so far

	// metric and visitor serve the QueryVisit hot path: the visitor closure
	// is built once per pooled encoder (not per request), so a warm encode
	// allocates nothing at all.
	metric  string
	visitor telemetry.SeriesVisitor
}

var encoderPool = sync.Pool{New: func() interface{} {
	e := new(encoder)
	e.visitor = func(labels telemetry.Labels, samples []telemetry.Sample) {
		e.beginSeries(e.metric, labels)
		for i, s := range samples {
			e.sample(i, s.Time, s.Value)
		}
		e.endSeries()
	}
	return e
}}

func getEncoder() *encoder {
	e := encoderPool.Get().(*encoder)
	e.buf = e.buf[:0]
	e.series = 0
	return e
}

// release drops references that could pin store memory and pools e.
func (e *encoder) release() {
	for i := range e.pts {
		e.pts[i] = telemetry.Point{}
	}
	e.pts = e.pts[:0]
	e.keys = e.keys[:0]
	encoderPool.Put(e)
}

func (e *encoder) begin(id string) {
	e.buf = append(e.buf, '{')
	if id != "" {
		e.buf = append(e.buf, `"id":`...)
		e.appendString(id)
		e.buf = append(e.buf, ',')
	}
	e.buf = append(e.buf, `"series":[`...)
}

func (e *encoder) end() {
	e.buf = append(e.buf, ']', '}', '\n')
}

// beginSeries opens one series object. labels may alias store memory; keys
// are copied into the scratch only for sorting, never retained.
func (e *encoder) beginSeries(metric string, labels telemetry.Labels) {
	if e.series > 0 {
		e.buf = append(e.buf, ',')
	}
	e.series++
	e.buf = append(e.buf, `{"metric":`...)
	e.appendString(metric)
	if len(labels) > 0 {
		e.buf = append(e.buf, `,"labels":{`...)
		e.keys = e.keys[:0]
		for k := range labels {
			e.keys = append(e.keys, k)
		}
		// Insertion sort: label sets are tiny and the scratch is reused, so
		// this stays allocation-free (sort.Strings would not allocate either,
		// but the interface conversion in sort.Sort escapes).
		for i := 1; i < len(e.keys); i++ {
			k := e.keys[i]
			j := i - 1
			for j >= 0 && e.keys[j] > k {
				e.keys[j+1] = e.keys[j]
				j--
			}
			e.keys[j+1] = k
		}
		for i, k := range e.keys {
			if i > 0 {
				e.buf = append(e.buf, ',')
			}
			e.appendString(k)
			e.buf = append(e.buf, ':')
			e.appendString(labels[k])
		}
		e.buf = append(e.buf, '}')
	}
	e.buf = append(e.buf, `,"samples":[`...)
}

func (e *encoder) sample(i int, t time.Duration, v float64) {
	if i > 0 {
		e.buf = append(e.buf, ',')
	}
	e.buf = append(e.buf, `{"t_ms":`...)
	e.buf = strconv.AppendInt(e.buf, int64(t/time.Millisecond), 10)
	e.buf = append(e.buf, `,"v":`...)
	e.appendFloat(v)
	e.buf = append(e.buf, '}')
}

func (e *encoder) endSeries() {
	e.buf = append(e.buf, ']', '}')
}

// appendFloat writes v as a JSON number; non-finite values (not
// representable in JSON) become null, matching encoding/json's strictness
// without failing the whole response.
func (e *encoder) appendFloat(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		e.buf = append(e.buf, `null`...)
		return
	}
	e.buf = strconv.AppendFloat(e.buf, v, 'g', -1, 64)
}

// appendString writes s as a JSON string. Metric names and labels are plain
// ASCII identifiers in practice, so the fast path just scans; anything
// needing escapes falls back to encoding/json.
func (e *encoder) appendString(s string) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			esc, err := json.Marshal(s)
			if err != nil { // unreachable for strings
				esc = []byte(`""`)
			}
			e.buf = append(e.buf, esc...)
			return
		}
	}
	e.buf = append(e.buf, '"')
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, '"')
}
