package gateway

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// newBigTestDB seeds enough samples that the range response body clears the
// gzip threshold.
func newBigTestDB(t testing.TB) *tsdb.DB {
	t.Helper()
	db := tsdb.New(0)
	for i := 0; i < 2000; i++ {
		ts := time.Duration(i) * time.Second
		if err := db.Append(telemetry.Point{Name: "cpu", Labels: telemetry.Labels{"node": "n1"}, Time: ts, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func gzQuery(g *Gateway, target, acceptEncoding string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, target, nil)
	if acceptEncoding != "" {
		r.Header.Set("Accept-Encoding", acceptEncoding)
	}
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, r)
	return w
}

func TestGatewayGzipRoundTrip(t *testing.T) {
	g := New(Options{Store: newBigTestDB(t)})
	defer g.Close()

	plain := gzQuery(g, "/v1/query?metric=cpu&to_ms=2000000", "")
	if plain.Code != http.StatusOK || plain.Header().Get("Content-Encoding") != "" {
		t.Fatalf("identity response: code %d encoding %q", plain.Code, plain.Header().Get("Content-Encoding"))
	}
	if plain.Body.Len() < gzipMinBytes {
		t.Fatalf("test body too small to exercise gzip: %d bytes", plain.Body.Len())
	}

	zipped := gzQuery(g, "/v1/query?metric=cpu&to_ms=2000000", "gzip")
	if zipped.Code != http.StatusOK {
		t.Fatalf("status = %d", zipped.Code)
	}
	if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if vary := zipped.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary = %q", vary)
	}
	if zipped.Body.Len() >= plain.Body.Len() {
		t.Fatalf("gzip did not shrink the body: %d >= %d", zipped.Body.Len(), plain.Body.Len())
	}
	zr, err := gzip.NewReader(zipped.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(unzipped) != plain.Body.String() {
		t.Fatal("gzip body does not decode to the identity body")
	}
	var resp tsdb.QueryResponse
	if err := json.Unmarshal(unzipped, &resp); err != nil {
		t.Fatalf("decoded body is not a query response: %v", err)
	}
	if g.Stats().Gzipped != 1 {
		t.Fatalf("Gzipped counter = %d, want 1", g.Stats().Gzipped)
	}
}

// TestGatewayGzipSmallResponseIdentity: payloads under the threshold are
// never compressed, even for gzip-capable clients.
func TestGatewayGzipSmallResponseIdentity(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	w := gzQuery(g, "/v1/query?metric=cpu&to_ms=10000&latest=1", "gzip")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if w.Body.Len() >= gzipMinBytes {
		t.Fatalf("latest response unexpectedly large: %d", w.Body.Len())
	}
	if enc := w.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("small response compressed: %q", enc)
	}
	if g.Stats().Gzipped != 0 {
		t.Fatal("Gzipped counter moved for an identity response")
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=1.0", true},
		{"br;q=1.0, gzip;q=0.8", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0", false},
		{"identity", false},
		{"GZIP", true}, // content-codings are case-insensitive
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if tc.header != "" {
			r.Header.Set("Accept-Encoding", tc.header)
		}
		if got := acceptsGzip(r); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
