package gateway

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// handleQuery answers the query plane. POST carries a tsdb.QueryRequest
// JSON body (the exact vocabulary of the "tsdb.query" bus topic, decoded
// through the same tsdb.DecodeRequestJSON path); GET maps query parameters
// onto the same fields (metric, from_ms, to_ms, step_ms, agg, latest, and
// match.<key>=<value> label matchers) for curl-ability.
//
// The response body is a tsdb.QueryResponse-shaped JSON object. Unlike the
// bus service, the request's id is not echoed: HTTP responses correlate by
// the exchange itself, and identical concurrent queries share one encoded
// body through the singleflight layer.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req tsdb.QueryRequest
	var err error
	switch r.Method {
	case http.MethodPost:
		var body []byte
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err == nil {
			req, err = tsdb.DecodeRequestJSON(body)
		}
	case http.MethodGet:
		req, err = queryFromParams(r.URL.Query())
	default:
		g.httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if err != nil {
		g.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Metric == "" {
		g.httpError(w, http.StatusBadRequest, "missing metric")
		return
	}
	if req.StepMS > 0 && !req.Latest {
		if _, ok := tsdb.ParseAgg(req.Agg); !ok {
			g.httpError(w, http.StatusBadRequest, "unknown agg %q", req.Agg)
			return
		}
	}

	// A coordinator has no local store: scatter-gather across the workers
	// and return the merged facility view. Partial coverage stays 200 with
	// the gap named in err, matching the bus-topic query surface.
	if g.opts.Store == nil {
		resp := g.opts.Cluster.Answer(req)
		resp.ID = "" // HTTP correlates by the exchange itself
		g.writeJSON(w, http.StatusOK, resp)
		return
	}

	c, shared := g.flight.do(queryKey(&req), func() (*encoder, error) { return g.encodeQuery(&req) })
	if shared {
		g.coalesced.Add(1)
	}
	defer c.release()
	if c.err != nil {
		g.httpError(w, http.StatusBadRequest, "%v", c.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.writeMaybeGzip(w, r, c.enc.buf)
}

// queryKey canonicalizes a request for coalescing: everything that affects
// the result, nothing that does not (the id).
func queryKey(req *tsdb.QueryRequest) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString(req.Metric)
	b.WriteByte(0)
	b.WriteString(req.Match.Key())
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(req.FromMS, 10))
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(req.ToMS, 10))
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(req.StepMS, 10))
	b.WriteByte(0)
	b.WriteString(req.Agg)
	if req.Latest {
		b.WriteString("\x00latest")
	}
	return b.String()
}

// queryFromParams maps GET parameters onto the wire request.
func queryFromParams(q url.Values) (tsdb.QueryRequest, error) {
	req := tsdb.QueryRequest{Metric: q.Get("metric"), Agg: q.Get("agg")}
	for _, f := range []struct {
		name string
		dst  *int64
	}{
		{"from_ms", &req.FromMS},
		{"to_ms", &req.ToMS},
		{"step_ms", &req.StepMS},
	} {
		if s := q.Get(f.name); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return req, fmt.Errorf("gateway: bad %s %q", f.name, s)
			}
			*f.dst = v
		}
	}
	if s := q.Get("latest"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return req, fmt.Errorf("gateway: bad latest %q", s)
		}
		req.Latest = v
	}
	for key, vals := range q {
		if label, ok := strings.CutPrefix(key, "match."); ok && label != "" && len(vals) > 0 {
			if req.Match == nil {
				req.Match = telemetry.Labels{}
			}
			req.Match[label] = vals[0]
		}
	}
	return req, nil
}

// encodeQuery runs one query against the store, encoding the response into
// a pooled buffer. The range path streams through QueryVisit — samples are
// appended to the body from inside the visit callback, so no intermediate
// series slices exist. Latest uses the fill-buffer LatestInto; rollups use
// the materializing QueryRollup (rollup windows are coarse and small).
func (g *Gateway) encodeQuery(req *tsdb.QueryRequest) (*encoder, error) {
	from := time.Duration(req.FromMS) * time.Millisecond
	to := time.Duration(req.ToMS) * time.Millisecond
	e := getEncoder()
	e.begin("")
	switch {
	case req.Latest:
		e.pts = g.opts.Store.LatestInto(e.pts[:0], req.Metric, req.Match)
		for _, p := range e.pts {
			e.beginSeries(p.Name, p.Labels)
			e.sample(0, p.Time, p.Value)
			e.endSeries()
		}
	case req.StepMS > 0:
		agg, ok := tsdb.ParseAgg(req.Agg)
		if !ok {
			e.release()
			return nil, fmt.Errorf("unknown agg %q", req.Agg)
		}
		step := time.Duration(req.StepMS) * time.Millisecond
		ss, ok := g.opts.Store.QueryRollup(req.Metric, req.Match, step, agg, from, to)
		if !ok {
			e.release()
			return nil, fmt.Errorf("no rollup %s/%v/%s registered", req.Metric, step, req.Agg)
		}
		for _, s := range ss {
			e.beginSeries(s.Name, s.Labels)
			for i, smp := range s.Samples {
				e.sample(i, smp.Time, smp.Value)
			}
			e.endSeries()
		}
	default:
		e.metric = req.Metric
		g.opts.Store.QueryVisit(req.Metric, req.Match, from, to, e.visitor)
	}
	e.end()
	return e, nil
}
