package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
)

// Defaults for Options.OutboxDepth and Options.ReplayDepth.
const (
	defaultOutboxDepth = 256
	defaultReplayDepth = 1024
)

// sseEvent is one fanned-out event: its monotonic id and the fully framed
// SSE wire bytes ("id: N\nevent: <topic>\ndata: <envelope json>\n\n"),
// encoded once and shared by every subscriber outbox and the replay ring.
type sseEvent struct {
	id    uint64
	topic string
	frame []byte
}

// Subscriber is one SSE client's view of the hub: a bounded outbox the
// serving goroutine drains, and a dropped-event counter that grows when the
// client is too slow to keep up. Idle subscribers cost exactly this struct
// and their channel buffer — no goroutine lives in the hub on their behalf.
type Subscriber struct {
	patterns []string
	out      chan []byte
	dropped  atomic.Uint64
}

// Dropped reports how many events were dropped because this subscriber's
// outbox was full.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Events returns the subscriber's outbox; the channel is closed when the
// subscriber is removed (Unsubscribe or hub Close).
func (s *Subscriber) Events() <-chan []byte { return s.out }

// hubPattern is the hub's per-pattern state: the bus subscription feeding
// it and the subscribers registered for the pattern.
type hubPattern struct {
	cancel func()
	subs   map[*Subscriber]struct{}
}

// Hub fans bus envelopes out to SSE subscribers. It reuses the bus's topic
// index — each distinct pattern is one bus subscription, shared by every
// subscriber of that pattern — and delivery into subscriber outboxes is
// strictly non-blocking: a slow subscriber accumulates drops on its own
// counter and the publisher (the simulation tick goroutine) never waits.
//
// A bounded ring of recent events supports Last-Event-ID replay across SSE
// reconnects: a resubscribing client receives the retained events newer
// than its last seen id before going live.
//
// Subscriptions with overlapping patterns ("telemetry.*" and "*" on one
// stream) deliver one copy per matching pattern, each with its own id —
// subscribe with disjoint patterns, or dedupe by topic client-side.
type Hub struct {
	bus *bus.Bus

	mu       sync.Mutex
	patterns map[string]*hubPattern
	ring     []sseEvent // circular replay buffer
	ringHead int        // index of the oldest retained event
	ringLen  int
	ringCap  int
	nextID   uint64
	closed   bool

	clients atomic.Int64
	events  atomic.Uint64
	dropped atomic.Uint64
}

// NewHub builds a hub over b retaining replayDepth events (<=0 selects the
// default).
func NewHub(b *bus.Bus, replayDepth int) *Hub {
	if replayDepth <= 0 {
		replayDepth = defaultReplayDepth
	}
	return &Hub{bus: b, patterns: make(map[string]*hubPattern), ringCap: replayDepth}
}

// Clients reports the number of live subscribers.
func (h *Hub) Clients() int64 { return h.clients.Load() }

// Events reports how many events were fanned out (counted once per bus
// envelope per matching pattern).
func (h *Hub) Events() uint64 { return h.events.Load() }

// Dropped reports events dropped across all subscribers' full outboxes.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Subscribe registers a subscriber for the given topic patterns with an
// outbox of the given depth (<=0 selects the default). lastID > 0 replays
// retained events newer than lastID that match the patterns, in order,
// before any live event is delivered.
func (h *Hub) Subscribe(patterns []string, lastID uint64, depth int) *Subscriber {
	if depth <= 0 {
		depth = defaultOutboxDepth
	}
	sub := &Subscriber{patterns: patterns, out: make(chan []byte, depth)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.out)
		return sub
	}
	if lastID > 0 {
		for i := 0; i < h.ringLen; i++ {
			ev := &h.ring[(h.ringHead+i)%h.ringCap]
			if ev.id <= lastID {
				continue
			}
			for _, p := range patterns {
				if bus.MatchTopic(p, ev.topic) {
					sub.offer(ev.frame, h)
					break
				}
			}
		}
	}
	for _, p := range patterns {
		hp := h.patterns[p]
		if hp == nil {
			hp = &hubPattern{subs: make(map[*Subscriber]struct{})}
			pattern := p
			hp.cancel = h.bus.Subscribe(pattern, func(env bus.Envelope) { h.fanout(pattern, env) })
			h.patterns[p] = hp
		}
		hp.subs[sub] = struct{}{}
	}
	h.clients.Add(1)
	return sub
}

// Unsubscribe removes sub, cancels bus subscriptions that lost their last
// subscriber, and closes the outbox.
func (h *Hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	if h.closed { // Close already detached everything
		h.mu.Unlock()
		return
	}
	removed := false
	var cancels []func()
	for _, p := range sub.patterns {
		hp := h.patterns[p]
		if hp == nil {
			continue
		}
		if _, ok := hp.subs[sub]; ok {
			delete(hp.subs, sub)
			removed = true
		}
		if len(hp.subs) == 0 {
			cancels = append(cancels, hp.cancel)
			delete(h.patterns, p)
		}
	}
	if removed {
		h.clients.Add(-1)
		// fanout sends only to registered subscribers under mu, so after the
		// deletes nothing can write to this outbox.
		close(sub.out)
	}
	h.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Close detaches every bus subscription and closes every outbox.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var cancels []func()
	seen := make(map[*Subscriber]struct{})
	for p, hp := range h.patterns {
		cancels = append(cancels, hp.cancel)
		for sub := range hp.subs {
			if _, dup := seen[sub]; !dup {
				seen[sub] = struct{}{}
				close(sub.out)
			}
		}
		delete(h.patterns, p)
	}
	h.clients.Store(0)
	h.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// offer performs the non-blocking outbox send. Caller holds h.mu.
func (s *Subscriber) offer(frame []byte, h *Hub) {
	select {
	case s.out <- frame:
	default:
		s.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// fanout is the bus handler for one pattern: encode once, retain for
// replay, offer to every subscriber of the pattern. The envelope JSON is
// built outside the hub lock; id assignment, ring append, and the
// non-blocking offers happen under it. Nothing here ever blocks, so the
// bus publisher is never backpressured regardless of subscriber count or
// speed.
func (h *Hub) fanout(pattern string, env bus.Envelope) {
	data, err := json.Marshal(env)
	if err != nil {
		return
	}
	h.mu.Lock()
	hp := h.patterns[pattern]
	if hp == nil || h.closed {
		h.mu.Unlock()
		return
	}
	h.nextID++
	frame := appendFrame(make([]byte, 0, len(data)+len(env.Topic)+32), h.nextID, env.Topic, data)
	ev := sseEvent{id: h.nextID, topic: env.Topic, frame: frame}
	if h.ring == nil {
		h.ring = make([]sseEvent, h.ringCap)
	}
	if h.ringLen == h.ringCap {
		h.ring[h.ringHead] = ev // overwrite the oldest
		h.ringHead = (h.ringHead + 1) % h.ringCap
	} else {
		h.ring[(h.ringHead+h.ringLen)%h.ringCap] = ev
		h.ringLen++
	}
	h.events.Add(1)
	for sub := range hp.subs {
		sub.offer(frame, h)
	}
	h.mu.Unlock()
}

// appendFrame builds one SSE wire frame.
func appendFrame(buf []byte, id uint64, topic string, data []byte) []byte {
	buf = append(buf, "id: "...)
	buf = strconv.AppendUint(buf, id, 10)
	buf = append(buf, "\nevent: "...)
	buf = append(buf, topic...)
	buf = append(buf, "\ndata: "...)
	buf = append(buf, data...)
	buf = append(buf, '\n', '\n')
	return buf
}

// defaultStreamTopics is what /v1/stream serves when no topics parameter is
// given: loop findings/plans/audit events, fleet round summaries, and the
// control plane's pending/resolved approval traffic.
const defaultStreamTopics = "loop.*,fleet.*,control.v1.*"

// streamHeartbeat keeps idle SSE connections alive through proxies.
const streamHeartbeat = 30 * time.Second

// handleStream serves GET /v1/stream?topics=<p1,p2,...> as a server-sent
// event stream. Events carry the envelope JSON with the bus topic as the
// SSE event name and a monotonic id; reconnecting clients send
// Last-Event-ID (header or ?last_id=) to replay retained events. When the
// client falls behind, dropped events are counted and reported on the
// stream as "dropped" events (data: total dropped so far).
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if g.hub == nil {
		g.httpError(w, http.StatusServiceUnavailable, "stream hub not served")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		g.httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	topics := r.URL.Query().Get("topics")
	if topics == "" {
		topics = defaultStreamTopics
	}
	var patterns []string
	for _, p := range strings.Split(topics, ",") {
		if p = strings.TrimSpace(p); p != "" {
			patterns = append(patterns, p)
		}
	}
	if len(patterns) == 0 {
		g.httpError(w, http.StatusBadRequest, "empty topics")
		return
	}
	var lastID uint64
	lastStr := r.Header.Get("Last-Event-ID")
	if lastStr == "" {
		lastStr = r.URL.Query().Get("last_id")
	}
	if lastStr != "" {
		v, err := strconv.ParseUint(lastStr, 10, 64)
		if err != nil {
			g.httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lastStr)
			return
		}
		lastID = v
	}

	sub := g.hub.Subscribe(patterns, lastID, g.opts.OutboxDepth)
	defer g.hub.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 3000\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(streamHeartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	var reportedDrops uint64
	for {
		select {
		case <-ctx.Done():
			return
		case frame, ok := <-sub.out:
			if !ok {
				return // hub closed
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			if d := sub.Dropped(); d > reportedDrops {
				reportedDrops = d
				fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", d)
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
