package gateway

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/control"
	"autoloop/internal/core"
	"autoloop/internal/fleet"
	"autoloop/internal/sim"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// newTestDB seeds a database with two cpu series (node=n1 values 0..9,
// node=n2 values 0,2,..,18, one sample per second) and a cpu/5s/mean rollup.
func newTestDB(t testing.TB) *tsdb.DB {
	t.Helper()
	db := tsdb.New(0)
	if err := db.AddRollup(tsdb.RollupRule{Metric: "cpu", Step: 5 * time.Second, Agg: tsdb.AggMean}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ts := time.Duration(i) * time.Second
		if err := db.Append(telemetry.Point{Name: "cpu", Labels: telemetry.Labels{"node": "n1"}, Time: ts, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(telemetry.Point{Name: "cpu", Labels: telemetry.Labels{"node": "n2"}, Time: ts, Value: float64(2 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// newTestControl wires a control service with one trivial registered case
// ("script") on the given bus, mirroring the control package's own tests.
func newTestControl(t testing.TB, b *bus.Bus) *control.Service {
	t.Helper()
	reg := control.NewRegistry()
	reg.MustRegister(control.CaseFactory{
		Name:     "script",
		Doc:      "test: plans one action per tick",
		Defaults: func() interface{} { return &struct{}{} },
		Priority: 1,
		Build: func(env *control.Env, c interface{}) ([]control.BuiltLoop, error) {
			l := core.NewLoop("script",
				core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
					return core.Observation{Time: now}, nil
				}),
				core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
					return core.Symptoms{Time: now, Findings: []core.Finding{{Kind: "f", Subject: "s1", Confidence: 1}}}, nil
				}),
				core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
					return core.Plan{Time: now, Actions: []core.Action{{Kind: "act", Subject: "s1", Amount: 1, Confidence: 1}}}, nil
				}),
				core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
					return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
				}),
			)
			return []control.BuiltLoop{{Loop: l}}, nil
		},
	})
	engine := sim.NewEngine(1)
	env := &control.Env{Clock: sim.VirtualClock{Engine: engine}, Rng: rand.New(rand.NewSource(1)), Bus: b}
	svc := control.NewService(reg, env, fleet.New(1), time.Minute).Attach(b, "test")
	t.Cleanup(svc.Close)
	return svc
}

// serve issues one request against the gateway handler.
func serve(g *Gateway, method, target, token, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, r)
	return w
}

func decodeQueryResponse(t *testing.T, w *httptest.ResponseRecorder) tsdb.QueryResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var resp tsdb.QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v (%s)", err, w.Body.String())
	}
	return resp
}

// seriesByNode indexes a response by the node label.
func seriesByNode(resp tsdb.QueryResponse) map[string]tsdb.WireSeries {
	out := make(map[string]tsdb.WireSeries, len(resp.Series))
	for _, s := range resp.Series {
		out[s.Labels["node"]] = s
	}
	return out
}

func TestAuthRoles(t *testing.T) {
	b := bus.New()
	g := New(Options{
		Store:          newTestDB(t),
		Control:        newTestControl(t, b),
		Bus:            b,
		ReadTokens:     []string{"reader"},
		OperatorTokens: []string{"operator"},
	})
	defer g.Close()

	cases := []struct {
		name           string
		method, target string
		token          string
		want           int
	}{
		{"healthz open", "GET", "/healthz", "", http.StatusOK},
		{"query no token", "GET", "/v1/query?metric=cpu", "", http.StatusUnauthorized},
		{"query bad token", "GET", "/v1/query?metric=cpu", "wrong", http.StatusUnauthorized},
		{"query read token", "GET", "/v1/query?metric=cpu", "reader", http.StatusOK},
		{"query operator token", "GET", "/v1/query?metric=cpu", "operator", http.StatusOK},
		{"metrics no token", "GET", "/metrics", "", http.StatusUnauthorized},
		{"metrics read token", "GET", "/metrics", "reader", http.StatusOK},
		{"stream no token", "GET", "/v1/stream", "", http.StatusUnauthorized},
		{"control list read token", "POST", "/v1/control/list", "reader", http.StatusOK},
		{"control pending read token", "POST", "/v1/control/pending", "reader", http.StatusOK},
		{"control spawn no token", "POST", "/v1/control/spawn", "", http.StatusUnauthorized},
		{"control spawn read token", "POST", "/v1/control/spawn", "reader", http.StatusForbidden},
		{"control set-mode read token", "POST", "/v1/control/set-mode", "reader", http.StatusForbidden},
		{"control approve read token", "POST", "/v1/control/approve", "reader", http.StatusForbidden},
		{"control unknown op", "POST", "/v1/control/nonsense", "operator", http.StatusNotFound},
		{"control GET not allowed", "GET", "/v1/control/list", "reader", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if w := serve(g, tc.method, tc.target, tc.token, ""); w.Code != tc.want {
				t.Fatalf("%s %s token=%q: status = %d, want %d (body %s)",
					tc.method, tc.target, tc.token, w.Code, tc.want, w.Body.String())
			}
		})
	}

	// The query-string token form (EventSource cannot set headers).
	if w := serve(g, "GET", "/v1/query?metric=cpu&token=reader", "", ""); w.Code != http.StatusOK {
		t.Fatalf("query-param token: status = %d", w.Code)
	}
}

func TestOpenModeGrantsOperator(t *testing.T) {
	b := bus.New()
	g := New(Options{Store: newTestDB(t), Control: newTestControl(t, b), Bus: b})
	defer g.Close()
	if w := serve(g, "GET", "/v1/query?metric=cpu", "", ""); w.Code != http.StatusOK {
		t.Fatalf("open-mode query: status = %d", w.Code)
	}
	w := serve(g, "POST", "/v1/control/spawn", "", `{"spec":{"case":"script"}}`)
	var rep control.Reply
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil || w.Code != http.StatusOK || !rep.OK {
		t.Fatalf("open-mode spawn: status = %d, reply %s", w.Code, w.Body.String())
	}
}

func TestQueryRangePOSTMatchesStore(t *testing.T) {
	db := newTestDB(t)
	g := New(Options{Store: db})
	defer g.Close()

	w := serve(g, "POST", "/v1/query", "", `{"metric":"cpu","from_ms":2000,"to_ms":5000}`)
	got := seriesByNode(decodeQueryResponse(t, w))
	want := db.Query("cpu", nil, 2*time.Second, 5*time.Second)
	if len(got) != len(want) {
		t.Fatalf("got %d series, want %d", len(got), len(want))
	}
	for _, ws := range want {
		gs, ok := got[ws.Labels["node"]]
		if !ok {
			t.Fatalf("missing series %v", ws.Labels)
		}
		if gs.Metric != "cpu" || len(gs.Samples) != len(ws.Samples) {
			t.Fatalf("series %v: got %d samples, want %d", ws.Labels, len(gs.Samples), len(ws.Samples))
		}
		for i, s := range ws.Samples {
			if gs.Samples[i].TimeMS != int64(s.Time/time.Millisecond) || gs.Samples[i].Value != s.Value {
				t.Fatalf("series %v sample %d = %+v, want %+v", ws.Labels, i, gs.Samples[i], s)
			}
		}
	}
}

func TestQueryGETWithMatcher(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	w := serve(g, "GET", "/v1/query?metric=cpu&from_ms=0&to_ms=10000&match.node=n1", "", "")
	resp := decodeQueryResponse(t, w)
	if len(resp.Series) != 1 || resp.Series[0].Labels["node"] != "n1" {
		t.Fatalf("response = %s", w.Body.String())
	}
	if n := len(resp.Series[0].Samples); n != 10 {
		t.Fatalf("got %d samples, want 10", n)
	}
}

func TestQueryLatest(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	w := serve(g, "GET", "/v1/query?metric=cpu&latest=true", "", "")
	got := seriesByNode(decodeQueryResponse(t, w))
	if len(got) != 2 {
		t.Fatalf("got %d series, want 2", len(got))
	}
	for node, wantV := range map[string]float64{"n1": 9, "n2": 18} {
		s := got[node]
		if len(s.Samples) != 1 || s.Samples[0].Value != wantV || s.Samples[0].TimeMS != 9000 {
			t.Fatalf("latest %s = %+v, want value %v at 9000ms", node, s.Samples, wantV)
		}
	}
}

func TestQueryRollup(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	w := serve(g, "GET", "/v1/query?metric=cpu&from_ms=0&to_ms=10000&step_ms=5000&agg=mean", "", "")
	got := seriesByNode(decodeQueryResponse(t, w))
	// One flushed bucket per series: [0,5s) stamped at 5s, mean of the first
	// five values.
	for node, wantV := range map[string]float64{"n1": 2, "n2": 4} {
		s := got[node]
		if len(s.Samples) < 1 || s.Samples[0].TimeMS != 5000 || s.Samples[0].Value != wantV {
			t.Fatalf("rollup %s = %+v, want mean %v at 5000ms", node, s.Samples, wantV)
		}
	}
}

func TestQueryBadRequests(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	cases := []struct {
		name           string
		method, target string
		body           string
		wantErr        string
	}{
		{"malformed json", "POST", "/v1/query", `{"metric":`, "decode query request"},
		{"wrong field type", "POST", "/v1/query", `{"metric":123,"latest":"yes"}`, "decode query request"},
		{"missing metric", "POST", "/v1/query", `{"from_ms":1}`, "missing metric"},
		{"unknown agg", "GET", "/v1/query?metric=cpu&step_ms=5000&agg=median", "", "unknown agg"},
		{"unregistered rollup", "GET", "/v1/query?metric=cpu&step_ms=7000&agg=mean", "", "no rollup"},
		{"bad from_ms", "GET", "/v1/query?metric=cpu&from_ms=abc", "", "bad from_ms"},
		{"bad latest", "GET", "/v1/query?metric=cpu&latest=maybe", "", "bad latest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := serve(g, tc.method, tc.target, "", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantErr) {
				t.Fatalf("body = %s, want mention of %q", w.Body.String(), tc.wantErr)
			}
		})
	}
}

func TestControlLifecycleOverHTTP(t *testing.T) {
	b := bus.New()
	svc := newTestControl(t, b)
	g := New(Options{Store: newTestDB(t), Control: svc, Bus: b})
	defer g.Close()

	post := func(op, body string) (int, control.Reply) {
		w := serve(g, "POST", "/v1/control/"+op, "", body)
		var rep control.Reply
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatalf("%s: decode reply: %v (%s)", op, err, w.Body.String())
		}
		return w.Code, rep
	}

	if code, rep := post("spawn", `{"spec":{"case":"script"}}`); code != 200 || !rep.OK || rep.Loop == nil || rep.Loop.Name != "script" {
		t.Fatalf("spawn = %d %+v", code, rep)
	}
	svc.Tick(1 * time.Minute)
	if code, rep := post("list", ""); code != 200 || !rep.OK || len(rep.Loops) != 1 || rep.Loops[0].State != "running" {
		t.Fatalf("list = %d %+v", code, rep)
	}
	if code, rep := post("pause", `{"loop":"script"}`); code != 200 || !rep.OK || rep.Loop.State != "paused" {
		t.Fatalf("pause = %d %+v", code, rep)
	}
	if code, rep := post("resume", `{"loop":"script"}`); code != 200 || !rep.OK || rep.Loop.State != "running" {
		t.Fatalf("resume = %d %+v", code, rep)
	}
	// The op in the path is authoritative: a body naming a different op is
	// overridden, not trusted.
	if code, rep := post("get", `{"op":"remove","loop":"script"}`); code != 200 || !rep.OK || rep.Op != control.OpGet {
		t.Fatalf("get with lying body = %d %+v", code, rep)
	}
	// Failed ops surface as 400 with the control error.
	if code, rep := post("pause", `{"loop":"nope"}`); code != 400 || rep.OK || rep.Error == "" {
		t.Fatalf("pause unknown loop = %d %+v", code, rep)
	}
}

func TestControlApproveDenyOverHTTP(t *testing.T) {
	b := bus.New()
	svc := newTestControl(t, b)
	g := New(Options{Store: newTestDB(t), Control: svc, Bus: b})
	defer g.Close()

	w := serve(g, "POST", "/v1/control/spawn", "", `{"spec":{"case":"script","mode":"human-in-the-loop"}}`)
	if w.Code != 200 {
		t.Fatalf("spawn: %d %s", w.Code, w.Body.String())
	}
	svc.Tick(1 * time.Minute) // plans one action, defers it for approval

	w = serve(g, "POST", "/v1/control/pending", "", "")
	var rep control.Reply
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil || !rep.OK || len(rep.Pending) != 1 {
		t.Fatalf("pending = %s (%v)", w.Body.String(), err)
	}
	seq := rep.Pending[0].Seq

	// Deny a bogus seq: 400 with the control error.
	w = serve(g, "POST", "/v1/control/deny", "", `{"seq":999}`)
	if w.Code != 400 || !strings.Contains(w.Body.String(), "no pending action") {
		t.Fatalf("deny bogus seq = %d %s", w.Code, w.Body.String())
	}
	// Approve the real one: acknowledged as queued.
	w = serve(g, "POST", "/v1/control/approve", "", fmt.Sprintf(`{"seq":%d,"reason":"ok"}`, seq))
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil || w.Code != 200 || !rep.OK ||
		rep.Resolution == nil || rep.Resolution.Outcome != control.OutcomeQueued {
		t.Fatalf("approve = %d %s", w.Code, w.Body.String())
	}
	svc.Tick(5 * time.Minute)
	w = serve(g, "POST", "/v1/control/get", "", `{"loop":"script"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil || !rep.OK || rep.Loop.Metrics.Executed != 1 {
		t.Fatalf("executed after approval = %s", w.Body.String())
	}
}

func TestControlUnavailable(t *testing.T) {
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	if w := serve(g, "POST", "/v1/control/list", "", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	b := bus.New()
	g := New(Options{Store: newTestDB(t), Control: newTestControl(t, b), Bus: b})
	defer g.Close()
	serve(g, "GET", "/v1/query?metric=cpu", "", "")
	w := serve(g, "GET", "/metrics", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"gateway_requests_total", "gateway_queries_coalesced_total",
		"tsdb_series 2", "tsdb_appended_total 20",
		"bus_published_total", "gateway_sse_clients 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

// gateStore wraps a Store so the test can hold the first QueryVisit open
// while concurrent identical queries pile up behind the singleflight.
type gateStore struct {
	Store
	visits  atomic.Int32
	entered chan struct{}
	release chan struct{}
}

func (s *gateStore) QueryVisit(name string, matcher telemetry.Labels, from, to time.Duration, visit telemetry.SeriesVisitor) {
	if s.visits.Add(1) == 1 {
		close(s.entered)
	}
	<-s.release
	s.Store.QueryVisit(name, matcher, from, to, visit)
}

func TestQueryCoalescing(t *testing.T) {
	st := &gateStore{Store: newTestDB(t), entered: make(chan struct{}), release: make(chan struct{})}
	g := New(Options{Store: st})
	defer g.Close()

	const n = 8
	req := tsdb.QueryRequest{Metric: "cpu", ToMS: 10000}
	key := queryKey(&req)

	var wg sync.WaitGroup
	bodies := make([]string, n)
	codes := make([]int, n)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := serve(g, "GET", "/v1/query?metric=cpu&to_ms=10000", "", "")
			codes[i], bodies[i] = w.Code, w.Body.String()
		}()
	}
	launch(0)
	<-st.entered // leader is inside the store visit
	for i := 1; i < n; i++ {
		launch(i)
	}
	// Wait for every joiner to be parked on the in-flight call, then let the
	// leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.flight.mu.Lock()
		c := g.flight.m[key]
		refs := int32(0)
		if c != nil {
			refs = c.refs.Load()
		}
		g.flight.mu.Unlock()
		if refs == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joiners never parked: refs = %d", refs)
		}
		time.Sleep(time.Millisecond)
	}
	close(st.release)
	wg.Wait()

	if v := st.visits.Load(); v != 1 {
		t.Fatalf("store visits = %d, want 1", v)
	}
	if got := g.Stats().Coalesced; got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK || bodies[i] != bodies[0] {
			t.Fatalf("response %d diverged: %d %s", i, codes[i], bodies[i])
		}
	}
	// The flight is gone once settled: the next query visits the store again.
	st.release = make(chan struct{})
	close(st.release)
	if w := serve(g, "GET", "/v1/query?metric=cpu&to_ms=10000", "", ""); w.Code != http.StatusOK {
		t.Fatalf("follow-up query: %d", w.Code)
	}
	if v := st.visits.Load(); v != 2 {
		t.Fatalf("store visits after follow-up = %d, want 2 (coalescing is not a cache)", v)
	}
}

func TestEncoderProducesValidJSON(t *testing.T) {
	e := getEncoder()
	defer e.release()
	e.begin("req-1")
	e.beginSeries("weird", telemetry.Labels{"q": `a"b\c`, "u": "héllo\n", "z": "plain"})
	e.sample(0, time.Second, math.NaN())
	e.sample(1, 2*time.Second, math.Inf(1))
	e.sample(2, 3*time.Second, 1.5)
	e.endSeries()
	e.end()

	var resp struct {
		ID     string `json:"id"`
		Series []struct {
			Metric  string                `json:"metric"`
			Labels  map[string]string     `json:"labels"`
			Samples []map[string]*float64 `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal(e.buf, &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, e.buf)
	}
	if resp.ID != "req-1" || len(resp.Series) != 1 {
		t.Fatalf("decoded = %+v", resp)
	}
	s := resp.Series[0]
	if s.Labels["q"] != `a"b\c` || s.Labels["u"] != "héllo\n" {
		t.Fatalf("labels round-trip = %+v", s.Labels)
	}
	if s.Samples[0]["v"] != nil || s.Samples[1]["v"] != nil {
		t.Fatal("non-finite values must encode as null")
	}
	if v := s.Samples[2]["v"]; v == nil || *v != 1.5 {
		t.Fatalf("finite value = %v", v)
	}
}

func TestGatewayEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gate is meaningless under -race")
	}
	g := New(Options{Store: newTestDB(t)})
	defer g.Close()
	req := tsdb.QueryRequest{Metric: "cpu", ToMS: 10000}
	run := func() {
		e, err := g.encodeQuery(&req)
		if err != nil {
			t.Fatal(err)
		}
		e.release()
	}
	for i := 0; i < 4; i++ {
		run() // warm the pool
	}
	if avg := testing.AllocsPerRun(200, run); avg > 0 {
		t.Fatalf("warm range encode allocates %.1f times per query, want 0", avg)
	}
}
