package gateway

import (
	"sync"
	"sync/atomic"
)

// flightGroup coalesces identical in-flight /v1/query requests: the first
// caller for a key runs the store visit and encode, every concurrent caller
// with the same key waits and shares the encoded body. The encoder is
// refcounted across the sharers and returned to the pool by whichever
// releases last, so sharing never copies the body.
//
// The dedup window is the in-flight duration only — once the leader
// finishes, the key is forgotten; this is request coalescing, not a cache,
// so results are never stale beyond one store visit.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight (or just-completed) encode shared by its
// waiters.
type flightCall struct {
	done chan struct{}
	enc  *encoder
	err  error
	refs atomic.Int32
}

// release returns the shared encoder to the pool once the last sharer is
// done writing it out.
func (c *flightCall) release() {
	if c.refs.Add(-1) == 0 && c.enc != nil {
		c.enc.release()
		c.enc = nil
	}
}

// do returns the call for key, running fn exactly once per coalescing
// window. shared reports whether this caller joined an existing flight.
// The caller must call release() on the returned call when done with
// call.enc.buf.
func (g *flightGroup) do(key string, fn func() (*encoder, error)) (c *flightCall, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.refs.Add(1)
		g.mu.Unlock()
		<-c.done
		return c, true
	}
	c = &flightCall{done: make(chan struct{})}
	c.refs.Store(1)
	g.m[key] = c
	g.mu.Unlock()

	c.enc, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c, false
}
