package gateway

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autoloop/internal/bus"
)

func publish(b *bus.Bus, topic string, payload interface{}) {
	b.Publish(bus.Envelope{Topic: topic, Payload: payload})
}

// recvFrame reads one frame from the subscriber outbox or fails.
func recvFrame(t *testing.T, sub *Subscriber) string {
	t.Helper()
	select {
	case frame, ok := <-sub.Events():
		if !ok {
			t.Fatal("outbox closed")
		}
		return string(frame)
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
	}
	return ""
}

func TestHubFanout(t *testing.T) {
	b := bus.New()
	h := NewHub(b, 8)
	defer h.Close()
	sub := h.Subscribe([]string{"loop.*"}, 0, 16)
	defer h.Unsubscribe(sub)

	publish(b, "loop.finding", map[string]int{"x": 1})
	frame := recvFrame(t, sub)
	if !strings.HasPrefix(frame, "id: 1\nevent: loop.finding\ndata: ") || !strings.HasSuffix(frame, "\n\n") {
		t.Fatalf("frame = %q", frame)
	}
	if !strings.Contains(frame, `"loop.finding"`) {
		t.Fatalf("frame data should carry the envelope JSON: %q", frame)
	}
	publish(b, "fleet.round", nil) // no matching pattern: not delivered
	publish(b, "loop.plan", nil)
	if frame = recvFrame(t, sub); !strings.HasPrefix(frame, "id: 2\nevent: loop.plan\n") {
		t.Fatalf("frame = %q (non-matching topics must not consume ids or slots)", frame)
	}
	if h.Clients() != 1 || h.Events() != 2 {
		t.Fatalf("clients = %d events = %d", h.Clients(), h.Events())
	}
}

func TestHubReplay(t *testing.T) {
	b := bus.New()
	h := NewHub(b, 8)
	defer h.Close()
	// A subscription must exist for events to enter the ring.
	keeper := h.Subscribe([]string{"loop.*"}, 0, 1)
	for i := 1; i <= 10; i++ {
		publish(b, "loop.finding", i)
	}
	// Ring keeps the last 8 (ids 3..10); ask for everything after id 5.
	sub := h.Subscribe([]string{"loop.*"}, 5, 16)
	for want := 6; want <= 10; want++ {
		frame := recvFrame(t, sub)
		if !strings.HasPrefix(frame, fmt.Sprintf("id: %d\n", want)) {
			t.Fatalf("replayed frame = %q, want id %d", frame, want)
		}
	}
	select {
	case frame := <-sub.Events():
		t.Fatalf("unexpected extra frame %q", string(frame))
	default:
	}
	// Replay filters by pattern: a subscriber of another topic gets nothing.
	other := h.Subscribe([]string{"fleet.*"}, 1, 16)
	select {
	case frame := <-other.Events():
		t.Fatalf("pattern-mismatched replay frame %q", string(frame))
	default:
	}
	h.Unsubscribe(keeper)
	h.Unsubscribe(sub)
	h.Unsubscribe(other)
}

func TestHubSlowSubscriberDropsNeverBlocks(t *testing.T) {
	b := bus.New()
	h := NewHub(b, 4)
	defer h.Close()
	sub := h.Subscribe([]string{"loop.*"}, 0, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			publish(b, "loop.finding", i)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on a full subscriber outbox")
	}
	if d := sub.Dropped(); d != 8 {
		t.Fatalf("sub dropped = %d, want 8 (outbox depth 2)", d)
	}
	if h.Dropped() != 8 || h.Events() != 10 {
		t.Fatalf("hub dropped = %d events = %d", h.Dropped(), h.Events())
	}
	// The two buffered frames are still intact and ordered.
	if f := recvFrame(t, sub); !strings.HasPrefix(f, "id: 1\n") {
		t.Fatalf("first retained frame = %q", f)
	}
	h.Unsubscribe(sub)
	if _, ok := <-sub.Events(); ok {
		// one more buffered frame is fine; the channel must be closed after
		if _, ok := <-sub.Events(); ok {
			t.Fatal("outbox not closed after Unsubscribe")
		}
	}
}

func TestHubUnsubscribeDetachesBusSubscription(t *testing.T) {
	b := bus.New()
	h := NewHub(b, 8)
	defer h.Close()
	s1 := h.Subscribe([]string{"loop.*"}, 0, 4)
	s2 := h.Subscribe([]string{"loop.*"}, 0, 4)
	h.Unsubscribe(s1)
	publish(b, "loop.x", nil)
	recvFrame(t, s2) // survivor still receives
	h.Unsubscribe(s2)

	h.mu.Lock()
	n := len(h.patterns)
	h.mu.Unlock()
	if n != 0 {
		t.Fatalf("patterns left after last unsubscribe: %d", n)
	}
	before := h.Events()
	publish(b, "loop.x", nil)
	if h.Events() != before {
		t.Fatal("bus subscription not cancelled with its last subscriber")
	}
}

// TestStreamHTTP drives /v1/stream over a real server: live events, then a
// reconnect with Last-Event-ID replays what was missed.
func TestStreamHTTP(t *testing.T) {
	b := bus.New()
	g := New(Options{Store: newTestDB(t), Bus: b, ReadTokens: []string{"reader"}})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stream?topics=loop.*&token=reader")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sc := bufio.NewScanner(resp.Body)
	readLine := func() string {
		if !sc.Scan() {
			t.Fatalf("stream ended: %v", sc.Err())
		}
		return sc.Text()
	}
	if l := readLine(); l != "retry: 3000" {
		t.Fatalf("first line = %q", l)
	}
	waitUntilSSE(t, func() bool { return g.hub.Clients() == 1 })
	publish(b, "loop.finding", map[string]string{"kind": "overheat"})
	var lines []string
	for len(lines) < 3 {
		if l := readLine(); l != "" {
			lines = append(lines, l)
		}
	}
	if lines[0] != "id: 1" || lines[1] != "event: loop.finding" || !strings.Contains(lines[2], "overheat") {
		t.Fatalf("event lines = %q", lines)
	}
	publish(b, "loop.finding", "missed-1")
	publish(b, "loop.finding", "missed-2")
	resp.Body.Close()

	// Reconnect claiming we saw id 1: ids 2 and 3 replay in order.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/stream?topics=loop.*&token=reader", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	var got []string
	for sc2.Scan() && len(got) < 2 {
		if l := sc2.Text(); strings.HasPrefix(l, "id: ") {
			got = append(got, l)
		}
	}
	if len(got) != 2 || got[0] != "id: 2" || got[1] != "id: 3" {
		t.Fatalf("replayed ids = %q", got)
	}
}

// TestStreamHTTPDroppedFrame wedges an SSE client until the hub drops
// events for it, then verifies the client is told via a "dropped" event.
func TestStreamHTTPDroppedFrame(t *testing.T) {
	b := bus.New()
	g := New(Options{Store: newTestDB(t), Bus: b, OutboxDepth: 2})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stream?topics=loop.*")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitUntilSSE(t, func() bool { return g.hub.Clients() == 1 })

	// Flood without reading until the outbox overflows. Large payloads fill
	// the kernel socket buffers quickly, wedging the handler in Write.
	payload := strings.Repeat("x", 16<<10)
	deadline := time.Now().Add(10 * time.Second)
	for g.hub.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for SSE outbox overflow")
		}
		publish(b, "loop.flood", payload)
	}

	// Now drain: among the retained frames we must find the drop report.
	found := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if sc.Text() == "event: dropped" {
				close(found)
				return
			}
		}
	}()
	select {
	case <-found:
	case <-time.After(5 * time.Second):
		t.Fatal("no dropped event on the stream")
	}
	if g.Stats().StreamDropped == 0 {
		t.Fatal("stats do not reflect the drops")
	}
}

// TestHubManyIdleSubscribers holds 10k subscribers on the hub and proves
// publishing stays fast, idle subscribers cost no goroutines, and teardown
// closes everyone. Run with -race in CI.
func TestHubManyIdleSubscribers(t *testing.T) {
	b := bus.New()
	h := NewHub(b, 64)
	const idle = 10000

	g0 := runtime.NumGoroutine()
	subs := make([]*Subscriber, idle)
	for i := range subs {
		subs[i] = h.Subscribe([]string{"loop.*"}, 0, 4)
	}
	if g1 := runtime.NumGoroutine(); g1 > g0+2 {
		t.Fatalf("idle subscribers spawned goroutines: %d -> %d", g0, g1)
	}

	active := h.Subscribe([]string{"loop.*"}, 0, 512)
	var got sync.WaitGroup
	got.Add(1)
	go func() {
		defer got.Done()
		for n := 0; n < 200; {
			if _, ok := <-active.Events(); !ok {
				return
			}
			n++
		}
	}()

	start := time.Now()
	var pubs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 50; i++ {
				publish(b, "loop.stress", i)
			}
		}()
	}
	pubs.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("200 publishes into %d subscribers took %v", idle+1, elapsed)
	}
	got.Wait() // the draining subscriber saw every event
	if h.Events() != 200 {
		t.Fatalf("events = %d, want 200", h.Events())
	}

	h.Close()
	for i, sub := range subs {
		for {
			if _, ok := <-sub.Events(); !ok {
				break
			}
			_ = i
		}
	}
	if h.Clients() != 0 {
		t.Fatalf("clients after close = %d", h.Clients())
	}
}

// waitUntilSSE polls cond briefly.
func waitUntilSSE(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
