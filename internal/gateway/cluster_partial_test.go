package gateway

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/chaos"
	"autoloop/internal/cluster"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// TestQueryPartialOnPartitionedWorker fronts a coordinator with the gateway
// and asymmetrically partitions one of two workers (the coordinator's
// frames to it vanish; its heartbeats still arrive, so its lease stays
// fresh and the scatter keeps fanning to it). /v1/query must stay 200 with
// the reachable worker's series, marked partial with the gap attributed to
// the partitioned worker — and /metrics must count the partial scatter.
func TestQueryPartialOnPartitionedWorker(t *testing.T) {
	coordBus := bus.New()
	coord := cluster.NewCoordinator(coordBus, cluster.Options{
		Lease: 2 * time.Second, ScatterTimeout: 300 * time.Millisecond,
	})
	defer coord.Close()
	srv, err := bus.NewServer("127.0.0.1:0", cluster.CoordExportPattern, coordBus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inj := chaos.NewInjector(7)
	proxy, err := chaos.NewProxy("127.0.0.1:0", srv.Addr(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	worker := func(id, addr string) {
		wb := bus.New()
		client, err := bus.Dial(addr, cluster.WorkerExportPattern, wb)
		if err != nil {
			t.Fatalf("worker %s dial: %v", id, err)
		}
		t.Cleanup(func() { client.Close() })
		db := tsdb.New(0)
		if err := db.Append(telemetry.Point{
			Name: "cpu", Labels: telemetry.Labels{"node": id}, Time: time.Second, Value: 1,
		}); err != nil {
			t.Fatal(err)
		}
		agent, err := cluster.NewAgent(wb, newTestControl(t, wb), tsdb.NewService(db), cluster.AgentOptions{
			ID: id, Heartbeat: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("worker %s agent: %v", id, err)
		}
		t.Cleanup(agent.Close)
	}
	worker("w1", srv.Addr())
	worker("w2", proxy.Addr())

	deadline := time.Now().Add(5 * time.Second)
	for len(coord.Directory().Alive()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never joined")
		}
		time.Sleep(10 * time.Millisecond)
	}

	g := New(Options{Cluster: coord, Bus: coordBus})
	defer g.Close()

	// Healthy cluster: the merged view is complete, not partial.
	resp := decodeQueryResponse(t, serve(g, "GET", "/v1/query?metric=cpu&latest=true", "", ""))
	if resp.Partial || len(resp.Failed) != 0 || len(resp.Series) != 2 {
		t.Fatalf("healthy query = partial=%v failed=%v series=%d, want complete with 2 series",
			resp.Partial, resp.Failed, len(resp.Series))
	}

	// Partition coordinator→w2: fanned queries to w2 vanish, heartbeats
	// from w2 keep its lease alive — the asymmetric partition.
	inj.Arm(chaos.Faults{PartitionFromTarget: true})

	resp = decodeQueryResponse(t, serve(g, "GET", "/v1/query?metric=cpu&latest=true", "", ""))
	if !resp.Partial {
		t.Fatalf("partitioned query not marked partial: %+v", resp)
	}
	if len(resp.Failed) != 1 || resp.Failed[0].Source != "w2" || resp.Failed[0].Err == "" {
		t.Fatalf("failed attribution = %+v, want one entry naming w2", resp.Failed)
	}
	if len(resp.Series) != 1 || resp.Series[0].Labels["node"] != "w1" {
		t.Fatalf("partial series = %+v, want w1's slice only", resp.Series)
	}
	if resp.Err == "" || !strings.Contains(resp.Err, "w2") {
		t.Fatalf("flat err %q does not name the gap", resp.Err)
	}

	w := serve(g, "GET", "/metrics", "", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "cluster_scatter_partial_total 1") {
		t.Fatalf("/metrics missing cluster_scatter_partial_total 1:\n%s", w.Body.String())
	}
}
