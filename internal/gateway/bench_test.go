package gateway

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/telemetry"
	"autoloop/internal/tsdb"
)

// nullWriter is a reusable ResponseWriter that discards the body, so the
// benchmark measures the gateway, not the recorder.
type nullWriter struct {
	h http.Header
	n int
}

func (w *nullWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *nullWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *nullWriter) WriteHeader(int)             {}

// BenchmarkGatewayQuery measures the query hot path end to end through the
// HTTP handler: auth, decode, singleflight, QueryVisit streaming encode.
// 16 series x 512 samples per response.
func BenchmarkGatewayQuery(b *testing.B) {
	db := tsdb.New(0)
	for s := 0; s < 16; s++ {
		labels := telemetry.Labels{"node": "n" + string(rune('a'+s))}
		for i := 0; i < 512; i++ {
			if err := db.Append(telemetry.Point{
				Name: "cpu", Labels: labels,
				Time: time.Duration(i) * time.Second, Value: float64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	g := New(Options{Store: db})
	defer g.Close()
	req := httptest.NewRequest("GET", "/v1/query?metric=cpu&from_ms=0&to_ms=600000", nil)
	h := g.Handler()
	w := &nullWriter{}

	// One warm-up pass to size the pooled encoder buffer.
	h.ServeHTTP(w, req)
	if w.n == 0 {
		b.Fatal("empty response")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.SetBytes(int64(w.n / (b.N + 1)))
}

// BenchmarkSSEFanout measures one bus publish fanned out to 1000 connected
// SSE subscribers, each drained by its own goroutine (the shape of 1000
// live dashboard clients).
func BenchmarkSSEFanout(b *testing.B) {
	b.Run("clients=1000", func(b *testing.B) {
		bb := bus.New()
		h := NewHub(bb, 64)
		defer h.Close()
		const clients = 1000
		for i := 0; i < clients; i++ {
			sub := h.Subscribe([]string{"loop.*"}, 0, 256)
			go func() {
				for range sub.Events() {
				}
			}()
		}
		env := bus.Envelope{Topic: "loop.finding", Payload: map[string]string{"kind": "overheat", "subject": "node-17"}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bb.Publish(env)
		}
		b.StopTimer()
		b.ReportMetric(float64(h.Dropped())/float64(b.N), "drops/op")
	})
}
