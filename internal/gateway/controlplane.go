package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"autoloop/internal/control"
)

// controlOps maps each /v1/control/<op> path element to the minimum role it
// needs. The read-only half mirrors what a dashboard polls; everything that
// mutates the fleet or settles an approval needs the operator role.
var controlOps = map[string]Role{
	control.OpList:     RoleRead,
	control.OpGet:      RoleRead,
	control.OpCases:    RoleRead,
	control.OpPending:  RoleRead,
	control.OpMembers:  RoleRead,
	control.OpSpawn:    RoleOperator,
	control.OpPause:    RoleOperator,
	control.OpResume:   RoleOperator,
	control.OpDrain:    RoleOperator,
	control.OpRemove:   RoleOperator,
	control.OpSetMode:  RoleOperator,
	control.OpSetGuard: RoleOperator,
	control.OpApprove:  RoleOperator,
	control.OpDeny:     RoleOperator,
}

// handleControl serves POST /v1/control/<op>: the body is a control.Request
// (without op — the path names it) for the regular ops, or a
// control.Verdict for approve/deny. The reply is the control.Reply the bus
// surface would publish, with status 200 when OK and 400 otherwise, so HTTP
// and TCP operators read one vocabulary.
func (g *Gateway) handleControl(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	op := strings.TrimPrefix(r.URL.Path, "/v1/control/")
	need, known := controlOps[op]
	if !known {
		g.httpError(w, http.StatusNotFound, "unknown control op %q", op)
		return
	}
	if r.Method != http.MethodPost {
		g.httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !g.require(w, r, need) {
		return
	}
	ctl, cl := g.opts.Control, g.opts.Cluster
	if ctl == nil && cl == nil {
		g.httpError(w, http.StatusServiceUnavailable, "control plane not served")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		g.httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}

	// A coordinator gateway routes through the cluster (placement, owner
	// routing, scatter-gather); otherwise the local control service answers.
	var rep control.Reply
	switch op {
	case control.OpApprove, control.OpDeny:
		var v control.Verdict
		if len(body) > 0 {
			if err := json.Unmarshal(body, &v); err != nil {
				g.httpError(w, http.StatusBadRequest, "decode verdict: %v", err)
				return
			}
		}
		if cl != nil {
			rep = cl.Verdict(op == control.OpApprove, v)
		} else {
			rep = ctl.Verdict(op == control.OpApprove, v)
		}
	default:
		var req control.Request
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				g.httpError(w, http.StatusBadRequest, "decode request: %v", err)
				return
			}
		}
		req.Op = op // the path is authoritative
		if cl != nil {
			rep = cl.Handle(req)
		} else {
			rep = ctl.Handle(req)
		}
	}
	status := http.StatusOK
	if !rep.OK {
		status = http.StatusBadRequest
	}
	g.writeJSON(w, status, rep)
}
