// Package chaos is the deterministic fault-injection layer under the
// daemon's resilience tests — and the home of the small retry primitives
// the production paths share with it. It wraps the real transports and
// storage the system already uses: a net.Conn/net.Listener shim injecting
// latency, jitter, bandwidth caps and mid-stream resets; a frame-aware TCP
// proxy that drops, duplicates, reorders and partitions newline-delimited
// bus frames on a seeded schedule; and a wal.FS implementation simulating
// short writes, fsync failures and ENOSPC. Everything is seed-driven and
// clock-hookable, so a chaos schedule replays byte-identically, and
// everything is disarmable at run time with ~zero overhead when disarmed
// (one atomic load on the hot path).
package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Default backoff schedule: first retry within 50ms, ceiling 15s — fast
// enough that a worker rejoins promptly after a blip, slow enough that a
// dead coordinator is not hammered.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 15 * time.Second
)

// Backoff is capped exponential backoff with full jitter: attempt n draws
// a delay uniformly from [0, min(Cap, Base<<n)). Full jitter (the schedule
// AWS popularized) desynchronizes a fleet of reconnecting workers — after
// a coordinator restart the redial storm spreads across the whole window
// instead of arriving in lockstep waves. A Backoff is safe for concurrent
// use; each successful connection should call Reset so the next outage
// starts the schedule over.
type Backoff struct {
	base time.Duration
	cap  time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a Backoff drawing jitter from a private seeded
// source. base and cap fall back to DefaultBackoffBase/DefaultBackoffCap
// when <= 0.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to sleep before the next attempt and advances the
// schedule. The first call after New or Reset draws from [0, base).
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	ceil := b.ceilingLocked()
	if b.attempt < 63 {
		b.attempt++
	}
	if ceil <= 1 {
		return ceil
	}
	return time.Duration(b.rng.Int63n(int64(ceil)))
}

// ceilingLocked computes min(cap, base<<attempt) without overflow.
func (b *Backoff) ceilingLocked() time.Duration {
	ceil := b.base
	for i := 0; i < b.attempt; i++ {
		ceil <<= 1
		if ceil >= b.cap || ceil <= 0 {
			return b.cap
		}
	}
	if ceil > b.cap {
		return b.cap
	}
	return ceil
}

// Reset restarts the schedule; call it after a successful attempt.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker for redial loops. While
// closed every attempt is allowed; Threshold consecutive failures trip it
// open, during which Allow refuses attempts outright; after Cooldown one
// half-open probe is allowed — its Success closes the breaker, its Failure
// re-opens it for another Cooldown. The point over bare backoff: once the
// peer is known-dead the worker stops burning dials (and log lines) at the
// backoff cap and probes at the slower cooldown cadence instead.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 10s).
	Cooldown time.Duration
	// Now is the clock hook (default time.Now) so virtual-clock tests can
	// drive the cooldown deterministically.
	Now func() time.Time

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 10 * time.Second
}

// Allow reports whether an attempt may proceed right now. An open breaker
// whose cooldown has elapsed transitions to half-open and allows exactly
// one probe; further attempts are refused until Success or Failure settles
// the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a successful attempt, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure records a failed attempt, tripping the breaker at Threshold
// consecutive failures (and immediately when a half-open probe fails).
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold() {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}

// State reports "closed", "open", or "half-open" (for logs and tests).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}
