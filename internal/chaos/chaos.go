package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one armed fault profile. The zero value injects nothing; each
// field arms one fault class. Rates are probabilities in [0, 1] drawn from
// the injector's seeded source, so a given (seed, schedule) replays
// identically.
type Faults struct {
	// Latency delays every frame/op by this much; Jitter adds a further
	// uniform draw from [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps throughput: each frame is additionally delayed by
	// size/BandwidthBps seconds (0 = unlimited).
	BandwidthBps int64

	// DropRate / DupRate / ReorderRate are per-frame probabilities used by
	// the frame-aware Proxy: dropped frames vanish (the transport ACKed
	// them — no retransmit), duplicated frames arrive twice, reordered
	// frames swap with their successor.
	DropRate    float64
	DupRate     float64
	ReorderRate float64

	// PartitionToTarget drops every frame flowing dialer→target;
	// PartitionFromTarget drops target→dialer. Both together are a full
	// partition; one alone is the asymmetric partition that real networks
	// produce and naive protocols mishandle.
	PartitionToTarget   bool
	PartitionFromTarget bool

	// ResetAfter forcibly closes the connection after this many more
	// frames/ops in either direction (0 = never) — the mid-stream RST.
	ResetAfter int
}

// verdict is the injector's per-frame decision.
type verdict struct {
	delay time.Duration
	drop  bool
	dup   bool
	swap  bool
	reset bool
}

// Injector owns one seeded fault schedule. It is shared by the Conn,
// Listener, and Proxy wrappers; Arm/Disarm may be called at any time from
// any goroutine (a test driving phases of a chaos schedule). When
// disarmed, wrappers pay one atomic load per operation and nothing else.
type Injector struct {
	armed atomic.Bool

	// Sleep is the delay hook (default time.Sleep); virtual-clock tests
	// may replace it before the injector is shared.
	Sleep func(time.Duration)

	mu     sync.Mutex
	rng    *rand.Rand
	faults Faults
	frames int // frames seen since the last Arm (drives ResetAfter)

	dropped   atomic.Uint64
	duplicate atomic.Uint64
	reordered atomic.Uint64
	resets    atomic.Uint64
}

// NewInjector returns a disarmed Injector whose random draws come from the
// given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), Sleep: time.Sleep}
}

// Arm installs a fault profile, resetting the ResetAfter countdown.
func (i *Injector) Arm(f Faults) {
	i.mu.Lock()
	i.faults = f
	i.frames = 0
	i.mu.Unlock()
	i.armed.Store(true)
}

// Disarm stops injecting; in-flight delays finish, new operations pass
// through untouched.
func (i *Injector) Disarm() { i.armed.Store(false) }

// Armed reports whether a fault profile is active.
func (i *Injector) Armed() bool { return i.armed.Load() }

// Counters returns how many frames were dropped, duplicated, reordered,
// and how many resets were injected since the injector was created.
func (i *Injector) Counters() (dropped, duplicated, reordered, resets uint64) {
	return i.dropped.Load(), i.duplicate.Load(), i.reordered.Load(), i.resets.Load()
}

// frameVerdict decides the fate of one frame of size bytes flowing toward
// (toTarget=true) or from the proxied target. Caller must have checked
// Armed.
func (i *Injector) frameVerdict(toTarget bool, size int) verdict {
	i.mu.Lock()
	f := i.faults
	i.frames++
	reset := f.ResetAfter > 0 && i.frames >= f.ResetAfter
	var v verdict
	v.delay = f.Latency
	if f.Jitter > 0 {
		v.delay += time.Duration(i.rng.Int63n(int64(f.Jitter)))
	}
	if f.BandwidthBps > 0 {
		v.delay += time.Duration(int64(size) * int64(time.Second) / f.BandwidthBps)
	}
	switch {
	case reset:
		v.reset = true
	case (toTarget && f.PartitionToTarget) || (!toTarget && f.PartitionFromTarget):
		v.drop = true
	case f.DropRate > 0 && i.rng.Float64() < f.DropRate:
		v.drop = true
	case f.DupRate > 0 && i.rng.Float64() < f.DupRate:
		v.dup = true
	case f.ReorderRate > 0 && i.rng.Float64() < f.ReorderRate:
		v.swap = true
	}
	if reset {
		// One reset per arming: the countdown does not re-fire for the
		// next connection unless the schedule re-arms.
		i.faults.ResetAfter = 0
	}
	i.mu.Unlock()

	switch {
	case v.reset:
		i.resets.Add(1)
	case v.drop:
		i.dropped.Add(1)
	case v.dup:
		i.duplicate.Add(1)
	case v.swap:
		i.reordered.Add(1)
	}
	return v
}

// opDelay is the byte-stream variant used by Conn: shaping only (latency,
// jitter, bandwidth), plus the reset countdown.
func (i *Injector) opDelay(size int) (delay time.Duration, reset bool) {
	i.mu.Lock()
	f := i.faults
	i.frames++
	reset = f.ResetAfter > 0 && i.frames >= f.ResetAfter
	if reset {
		i.faults.ResetAfter = 0
	}
	delay = f.Latency
	if f.Jitter > 0 {
		delay += time.Duration(i.rng.Int63n(int64(f.Jitter)))
	}
	if f.BandwidthBps > 0 {
		delay += time.Duration(int64(size) * int64(time.Second) / f.BandwidthBps)
	}
	i.mu.Unlock()
	if reset {
		i.resets.Add(1)
	}
	return delay, reset
}

// partitioned reports the armed partition state for a direction.
func (i *Injector) partitioned(toTarget bool) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if toTarget {
		return i.faults.PartitionToTarget
	}
	return i.faults.PartitionFromTarget
}
