package chaos

import (
	"errors"
	"net"
)

// ErrInjectedReset is the error surfaced by a Conn whose injector decided
// to cut the stream mid-flight.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Conn wraps a net.Conn with byte-stream fault injection: latency, jitter,
// and bandwidth shaping on both directions, outbound blackholing during a
// PartitionToTarget, and mid-stream resets. Frame-granular faults (drop,
// duplicate, reorder) need message boundaries and live in Proxy. When the
// injector is disarmed a Conn is a transparent passthrough costing one
// atomic load per call.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn attaches an injector to a connection.
func WrapConn(c net.Conn, inj *Injector) *Conn { return &Conn{Conn: c, inj: inj} }

// Read applies latency/jitter/bandwidth shaping to received bytes.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.inj.Armed() {
		delay, reset := c.inj.opDelay(n)
		if delay > 0 {
			c.inj.Sleep(delay)
		}
		if reset {
			c.Conn.Close()
			return n, ErrInjectedReset
		}
	}
	return n, err
}

// Write applies shaping, blackholes the bytes during an outbound
// partition (the write "succeeds" but nothing is sent — the peer's view
// of a one-way partition), and injects resets.
func (c *Conn) Write(p []byte) (int, error) {
	if !c.inj.Armed() {
		return c.Conn.Write(p)
	}
	delay, reset := c.inj.opDelay(len(p))
	if delay > 0 {
		c.inj.Sleep(delay)
	}
	if reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if c.inj.partitioned(true) {
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries the
// injector.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener attaches an injector to a listener.
func WrapListener(l net.Listener, inj *Injector) *Listener {
	return &Listener{Listener: l, inj: inj}
}

// Accept wraps the accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}
