package chaos

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"autoloop/internal/wal"
)

// FSFaults is one armed storage-fault profile. Counts are countdowns —
// "fail the next N" — which keeps fault tests deterministic without a
// random source: the Nth write after Arm fails, every run.
type FSFaults struct {
	// FailWrites fails the next N file writes with ENOSPC (nothing
	// written).
	FailWrites int
	// ShortWrites makes the next N file writes write only the first half
	// of the buffer and return io.ErrShortWrite.
	ShortWrites int
	// FailFsyncs fails the next N fsyncs with EIO — the fsyncgate fault:
	// dirty pages may be gone, and the kernel will not report it twice.
	FailFsyncs int
	// FailCreates fails the next N file creates (O_CREATE opens) with
	// ENOSPC.
	FailCreates int
}

// FS is a fault-injecting wal.FS over the process filesystem. Disarmed it
// is a transparent passthrough. Arm installs countdown faults consumed by
// subsequent operations; the injected error values are real syscall
// errnos, so the WAL's retryable-vs-fatal taxonomy is exercised exactly as
// a real disk would drive it.
type FS struct {
	armed atomic.Bool

	mu sync.Mutex
	f  FSFaults

	writeFaults  atomic.Uint64
	shortWrites  atomic.Uint64
	fsyncFaults  atomic.Uint64
	createFaults atomic.Uint64
}

// NewFS returns a disarmed fault-injecting filesystem.
func NewFS() *FS { return &FS{} }

// Arm installs a fault profile.
func (fs *FS) Arm(f FSFaults) {
	fs.mu.Lock()
	fs.f = f
	fs.mu.Unlock()
	fs.armed.Store(true)
}

// Disarm stops injecting; unconsumed countdowns are kept for a later
// re-Arm decision but inert.
func (fs *FS) Disarm() { fs.armed.Store(false) }

// Counters reports how many faults of each class were injected.
func (fs *FS) Counters() (writes, shorts, fsyncs, creates uint64) {
	return fs.writeFaults.Load(), fs.shortWrites.Load(), fs.fsyncFaults.Load(), fs.createFaults.Load()
}

// take consumes one unit of the selected countdown, reporting whether the
// fault fires.
func (fs *FS) take(n *int) bool {
	if !fs.armed.Load() {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if *n <= 0 {
		return false
	}
	*n--
	return true
}

// MkdirAll implements wal.FS.
func (fs *FS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// OpenFile implements wal.FS, wrapping the file so write/fsync faults
// reach it.
func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if flag&os.O_CREATE != 0 && fs.take(&fs.f.FailCreates) {
		fs.createFaults.Add(1)
		return nil, &os.PathError{Op: "open", Path: name, Err: syscall.ENOSPC}
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: f, fs: fs}, nil
}

// ReadDir implements wal.FS.
func (fs *FS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

// Remove implements wal.FS.
func (fs *FS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements wal.FS.
func (fs *FS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// file is one fault-wrapped open file.
type file struct {
	*os.File
	fs *FS
}

// Write injects ENOSPC (nothing written) or a short write (first half
// written, io.ErrShortWrite returned) before delegating.
func (f *file) Write(p []byte) (int, error) {
	if f.fs.take(&f.fs.f.FailWrites) {
		f.fs.writeFaults.Add(1)
		return 0, &os.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
	}
	if f.fs.take(&f.fs.f.ShortWrites) {
		f.fs.shortWrites.Add(1)
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &os.PathError{Op: "write", Path: f.Name(), Err: io.ErrShortWrite}
	}
	return f.File.Write(p)
}

// Sync injects EIO, the canonical failed-fsync errno.
func (f *file) Sync() error {
	if f.fs.take(&f.fs.f.FailFsyncs) {
		f.fs.fsyncFaults.Add(1)
		return &os.PathError{Op: "fsync", Path: f.Name(), Err: syscall.EIO}
	}
	return f.File.Sync()
}
