package chaos

import (
	"net"
	"testing"
	"time"
)

// BenchmarkBackoffSchedule prices one Next draw — the redial loop's
// per-attempt cost.
func BenchmarkBackoffSchedule(b *testing.B) {
	bo := NewBackoff(0, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bo.Next()
		if i%16 == 15 {
			bo.Reset()
		}
	}
}

// discardConn is a no-op net.Conn so the benchmark prices only the chaos
// wrapper, not a kernel socket.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Read(p []byte) (int, error)       { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkChaosConn prices a Write through the wrapper. The disarmed case
// is the production overhead bound: one atomic load over the raw conn.
func BenchmarkChaosConn(b *testing.B) {
	payload := make([]byte, 256)
	b.Run("disarmed", func(b *testing.B) {
		c := WrapConn(discardConn{}, NewInjector(1))
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("armed-shaping", func(b *testing.B) {
		inj := NewInjector(1)
		inj.Sleep = func(time.Duration) {}
		inj.Arm(Faults{Latency: time.Microsecond})
		c := WrapConn(discardConn{}, inj)
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestChaosConnDisarmedAllocs pins the disarmed hot path at zero
// allocations — the wrapper must be free when no faults are armed.
func TestChaosConnDisarmedAllocs(t *testing.T) {
	c := WrapConn(discardConn{}, NewInjector(1))
	payload := make([]byte, 256)
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("disarmed chaos conn write allocates %v per op, want 0", n)
	}
}
