package chaos

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

func TestBackoffCapAndGrowth(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	// Ceilings double 10ms→20→40→80 and then stay capped.
	wantCeil := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, c := range wantCeil {
		ceil := c * time.Millisecond
		d := b.Next()
		if d < 0 || d >= ceil {
			t.Fatalf("attempt %d: delay %v outside [0, %v)", i, d, ceil)
		}
	}
	if got := b.Attempt(); got != len(wantCeil) {
		t.Fatalf("Attempt() = %d, want %d", got, len(wantCeil))
	}
}

func TestBackoffResetOnSuccess(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	b.Reset()
	if got := b.Attempt(); got != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", got)
	}
	// Back to the first-attempt ceiling.
	for i := 0; i < 50; i++ {
		if d := b.Next(); d >= 10*time.Millisecond {
			t.Fatalf("post-reset delay %v >= base ceiling", d)
		}
		b.Reset()
	}
}

func TestBackoffDeterministicForSeed(t *testing.T) {
	a := NewBackoff(0, 0, 42)
	b := NewBackoff(0, 0, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(0, 0)
	br := &Breaker{Threshold: 3, Cooldown: time.Minute, Now: func() time.Time { return now }}
	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		br.Failure()
	}
	if br.State() != "closed" {
		t.Fatalf("state below threshold = %s, want closed", br.State())
	}
	br.Failure() // third consecutive failure trips it
	if br.State() != "open" {
		t.Fatalf("state at threshold = %s, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker allowed an attempt before cooldown")
	}
	now = now.Add(time.Minute) // cooldown elapses → one half-open probe
	if !br.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if br.Allow() {
		t.Fatal("breaker allowed a second concurrent probe")
	}
	br.Failure() // failed probe re-opens
	if br.State() != "open" || br.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	now = now.Add(time.Minute)
	if !br.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	br.Success()
	if br.State() != "closed" || !br.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// proxyPair starts an echo-less sink server and a chaos proxy in front of
// it, returning a dialed client conn and a scanner over what the sink
// received.
func proxyHarness(t *testing.T, inj *Injector) (net.Conn, *bufio.Scanner, *Proxy) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	received := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			received <- c
		}
	}()
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	client, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	var sink net.Conn
	select {
	case sink = <-received:
	case <-time.After(2 * time.Second):
		t.Fatal("proxy never dialed the target")
	}
	t.Cleanup(func() { sink.Close() })
	return client, bufio.NewScanner(sink), p
}

func TestProxyPassthroughWhenDisarmed(t *testing.T) {
	inj := NewInjector(1)
	client, sc, _ := proxyHarness(t, inj)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(client, "frame-%d\n", i)
	}
	for i := 0; i < 10; i++ {
		if !sc.Scan() {
			t.Fatalf("sink stream ended after %d frames", i)
		}
		if want := fmt.Sprintf("frame-%d", i); sc.Text() != want {
			t.Fatalf("frame %d = %q, want %q", i, sc.Text(), want)
		}
	}
}

func TestProxyDropAndDup(t *testing.T) {
	inj := NewInjector(99)
	inj.Arm(Faults{DropRate: 0.5})
	client, sc, _ := proxyHarness(t, inj)
	const sent = 400
	go func() {
		for i := 0; i < sent; i++ {
			fmt.Fprintf(client, "frame-%d\n", i)
		}
		client.Close()
	}()
	got := 0
	for sc.Scan() {
		got++
	}
	dropped, _, _, _ := inj.Counters()
	if int(dropped) != sent-got {
		t.Fatalf("dropped counter %d but %d frames missing", dropped, sent-got)
	}
	// 50% loss over 400 frames: expect well inside (100, 300).
	if got < 100 || got > 300 {
		t.Fatalf("got %d of %d frames through a 50%% drop, outside plausible band", got, sent)
	}
}

func TestProxyPartitionOneWay(t *testing.T) {
	inj := NewInjector(3)
	inj.Arm(Faults{PartitionToTarget: true})
	client, sc, _ := proxyHarness(t, inj)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(client, "lost-%d\n", i)
	}
	// Heal only after the relay has demonstrably dropped all five — the
	// writes above race the proxy's relay goroutine.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if dropped, _, _, _ := inj.Counters(); dropped >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relay never consumed the partitioned frames")
		}
		time.Sleep(time.Millisecond)
	}
	inj.Disarm()
	fmt.Fprintf(client, "healed\n")
	if !sc.Scan() {
		t.Fatal("sink stream ended")
	}
	if sc.Text() != "healed" {
		t.Fatalf("first frame after heal = %q, want %q (partitioned frames must vanish)", sc.Text(), "healed")
	}
}

func TestProxyInjectedReset(t *testing.T) {
	inj := NewInjector(5)
	inj.Arm(Faults{ResetAfter: 3})
	client, sc, _ := proxyHarness(t, inj)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := fmt.Fprintf(client, "frame-%d\n", i); err != nil {
				return
			}
		}
	}()
	got := 0
	for sc.Scan() {
		got++
	}
	if got > 2 {
		t.Fatalf("sink saw %d frames past a reset-after-3 schedule", got)
	}
	if _, _, _, resets := inj.Counters(); resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
}

func TestConnDisarmedPassthrough(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	inj := NewInjector(1)
	ca := WrapConn(a, inj)
	go ca.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := b.Read(buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

func TestConnPartitionBlackholesWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	inj := NewInjector(1)
	inj.Arm(Faults{PartitionToTarget: true})
	ca := WrapConn(a, inj)
	// net.Pipe is unbuffered: an actually-forwarded write would block with
	// no reader, so an immediate successful return proves the blackhole.
	done := make(chan error, 1)
	go func() {
		n, err := ca.Write([]byte("swallowed"))
		if err == nil && n != 9 {
			err = fmt.Errorf("short blackhole write %d", n)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("partitioned write blocked instead of blackholing")
	}
}
