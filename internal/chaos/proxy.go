package chaos

import (
	"bufio"
	"net"
	"sync"
)

// maxFrameBytes bounds one relayed frame, matching the bus bridge's own
// line limit so the proxy never splits what the endpoint would accept.
const maxFrameBytes = 1 << 20

// Proxy is a frame-aware chaos relay for newline-delimited protocols (the
// bus TCP bridge writes exactly one envelope per line, so frame = line).
// A test points a worker at the proxy instead of the coordinator; the
// proxy relays every line through the injector, which may drop, duplicate,
// reorder, delay, partition per direction, or reset mid-stream. Dropped
// frames are gone for good — the underlying TCP stream ACKed them, so this
// models loss above the transport, the kind heartbeats, digests, and
// assigns must survive by re-sending.
//
// The proxy keeps accepting after an injected reset: a reconnecting dialer
// gets a fresh relayed session, which is exactly the redial path under
// test.
type Proxy struct {
	inj    *Injector
	ln     net.Listener
	target string

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy listens on listenAddr (use "127.0.0.1:0") and relays every
// accepted connection to target through the injector.
func NewProxy(listenAddr, target string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{inj: inj, ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and tears down every relayed session.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		t, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		if !p.track(c) || !p.track(t) {
			c.Close()
			t.Close()
			return
		}
		pair := func() { // either relay direction dying kills the session
			c.Close()
			t.Close()
		}
		p.wg.Add(2)
		go p.relay(c, t, true, pair)
		go p.relay(t, c, false, pair)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// relay pumps newline-delimited frames src→dst, consulting the injector
// per frame. A held frame (reorder) is emitted after its successor, or
// flushed at stream end.
func (p *Proxy) relay(src, dst net.Conn, toTarget bool, kill func()) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer kill()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64<<10), maxFrameBytes+16)
	var held []byte // frame awaiting its successor after a reorder verdict
	emit := func(line []byte) bool {
		buf := make([]byte, 0, len(line)+1)
		buf = append(buf, line...)
		buf = append(buf, '\n')
		_, err := dst.Write(buf)
		return err == nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		if !p.inj.Armed() {
			if held != nil {
				if !emit(held) {
					return
				}
				held = nil
			}
			if !emit(line) {
				return
			}
			continue
		}
		v := p.inj.frameVerdict(toTarget, len(line)+1)
		if v.delay > 0 {
			p.inj.Sleep(v.delay)
		}
		switch {
		case v.reset:
			return // kill() closes both sides mid-stream
		case v.drop:
			continue
		case v.swap && held == nil:
			held = append([]byte(nil), line...)
			continue
		}
		if !emit(line) {
			return
		}
		if v.dup {
			if !emit(line) {
				return
			}
		}
		if held != nil {
			if !emit(held) {
				return
			}
			held = nil
		}
	}
	if held != nil {
		emit(held)
	}
}
