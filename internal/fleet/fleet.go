// Package fleet runs many MAPE-K autonomy loops concurrently under one
// coordinator — the step the paper's vision of simultaneous facility-,
// system-, and job-level loops requires once more than a handful of loops
// share one managed system.
//
// A Coordinator owns a set of core.Loops and ticks them in rounds: the plan
// half of every loop (Monitor/Analyze/Plan) fans out over a worker pool, a
// round barrier waits for all of them, a per-subject Arbiter resolves
// cross-loop conflicts among the planned actions, and the execute halves run
// serially in registration order. Because the plan half touches only
// loop-local state (audit entries and bus events are buffered inside the
// PlannedTick) and everything order-sensitive happens after the barrier, a
// round's outcome is bit-identical regardless of worker count or goroutine
// scheduling — fixed-seed experiment tables survive the concurrency.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/sim"
)

// TopicRound is the bus topic carrying one RoundSummary per coordinator
// round.
const TopicRound = "fleet.round"

// TopicConflict is the bus topic carrying one ConflictRecord per arbitrated
// subject per round.
const TopicConflict = "fleet.conflict"

// RoundSummary is the envelope payload published on TopicRound.
type RoundSummary struct {
	Round      int `json:"round"`
	Loops      int `json:"loops"`
	Planned    int `json:"planned"`
	Arbitrated int `json:"arbitrated"`
	Conflicts  int `json:"conflicts"`
	// Remote counts actions this round that survived local arbitration but
	// were denied by an external (cross-node) arbiter.
	Remote int `json:"remote,omitempty"`
}

// Metrics counts coordinator activity across rounds.
type Metrics struct {
	Rounds     int
	Planned    int // actions planned across all loops
	Arbitrated int // actions lost to cross-loop arbitration
	Conflicts  int // conflict groups resolved
	Remote     int // actions denied by the external (cross-node) arbiter
}

// ActionDigest summarizes one planned action that survived local arbitration,
// in the form an external arbiter (a cluster coordinator resolving conflicts
// across worker processes) needs to decide cross-node contention: who plans
// what on which subject, at which local priority.
type ActionDigest struct {
	Loop       string  `json:"loop"`
	Kind       string  `json:"kind"`
	Subject    string  `json:"subject"`
	Priority   int     `json:"priority"`
	Amount     float64 `json:"amount,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// member is one registered loop with its arbitration priority and tick
// cadence (the loop plans on every every-th round).
type member struct {
	loop     *core.Loop
	priority int
	every    int
	n        int // rounds since the member last planned
}

// Coordinator ticks a fleet of loops concurrently with cross-loop conflict
// arbitration. The zero value is not usable; construct with New. Tick must be
// called from one goroutine (under the simulator, the engine thread).
type Coordinator struct {
	workers int
	arbiter *Arbiter
	bus     *bus.Bus
	source  string

	members []member
	names   map[string]bool
	plans   []*core.PlannedTick // reused across rounds
	metrics Metrics

	// external, when set, is consulted between local arbitration and the
	// execute phase: it receives digests of the round's surviving actions
	// and returns a parallel deny mask. See SetExternalArbiter.
	external func(now time.Duration, digests []ActionDigest) []bool
	digests  []ActionDigest // reused across rounds
	digRefs  []digestRef    // reused across rounds
}

// digestRef locates a digest's action in the round's plan set.
type digestRef struct{ mi, ai int }

// New returns a coordinator whose plan phase fans out over workers
// goroutines; workers <= 0 selects GOMAXPROCS. A single worker degenerates to
// sequential planning, which is useful as a determinism baseline.
func New(workers int) *Coordinator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Coordinator{workers: workers, arbiter: NewArbiter(), names: make(map[string]bool)}
}

// Arbiter exposes the conflict arbiter for rule configuration.
func (c *Coordinator) Arbiter() *Arbiter { return c.arbiter }

// PublishTo arranges for every round to publish its ConflictRecords and
// RoundSummary on b as one batch. source tags the envelopes. Returns c for
// chaining.
func (c *Coordinator) PublishTo(b *bus.Bus, source string) *Coordinator {
	c.bus = b
	c.source = source
	return c
}

// SetExternalArbiter installs a cross-node arbitration hook, consulted after
// the local arbiter and before the execute phase of every round that planned
// at least one subject-bearing action. The hook receives one digest per
// surviving action and returns a parallel slice; true at index i suppresses
// digest i's action exactly like a local arbitration loss (the action is
// audited and counted as arbitrated, and additionally as Metrics.Remote).
// A nil hook (the default) keeps rounds byte-identical to the single-node
// coordinator. The hook runs on the tick goroutine and may block — a cluster
// worker uses it for a digest/verdict round trip with its coordinator.
func (c *Coordinator) SetExternalArbiter(f func(now time.Duration, digests []ActionDigest) []bool) {
	c.external = f
}

// Add registers a loop with an arbitration priority: on a cross-loop conflict
// the higher priority wins (after any kind ranks — see Arbiter.RankKind),
// with registration order breaking ties. Registration order also fixes the
// deterministic execute order. Loop names must be unique within a fleet so
// conflict records are unambiguous.
func (c *Coordinator) Add(l *core.Loop, priority int) {
	c.AddEvery(l, priority, 1)
}

// AddEvery registers a loop that plans only on every every-th round — the
// fleet-level form of a per-loop period: under a coordinator driven at base
// cadence P, a loop spec'd with period N*P registers with every=N. The
// first plan happens on the member's every-th round after joining.
func (c *Coordinator) AddEvery(l *core.Loop, priority, every int) {
	if l == nil {
		panic("fleet: Add with nil loop")
	}
	if c.names[l.Name] {
		panic(fmt.Sprintf("fleet: duplicate loop name %q", l.Name))
	}
	if every < 1 {
		every = 1
	}
	c.names[l.Name] = true
	c.members = append(c.members, member{loop: l, priority: priority, every: every})
}

// Remove unregisters the named loop mid-run and reports whether it was a
// member. The loop itself is left in whatever lifecycle state it holds; use
// Drain/Stop on the loop first for a graceful exit. Remove must be called
// from the tick goroutine (no round may be in flight).
func (c *Coordinator) Remove(name string) bool {
	for i := range c.members {
		if c.members[i].loop.Name == name {
			c.members = append(c.members[:i], c.members[i+1:]...)
			delete(c.names, name)
			return true
		}
	}
	return false
}

// Len reports how many loops are registered.
func (c *Coordinator) Len() int { return len(c.members) }

// Loops returns the registered loops in registration (execute) order.
func (c *Coordinator) Loops() []*core.Loop {
	out := make([]*core.Loop, len(c.members))
	for i := range c.members {
		out[i] = c.members[i].loop
	}
	return out
}

// Metrics returns a snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() Metrics { return c.metrics }

// Tick runs one coordinated round at virtual time now: concurrent plan
// halves, round barrier, arbitration, then serial execute halves in
// registration order.
func (c *Coordinator) Tick(now time.Duration) {
	c.pruneStopped()
	n := len(c.members)
	if n == 0 {
		return
	}
	if cap(c.plans) < n {
		c.plans = make([]*core.PlannedTick, n)
	}
	plans := c.plans[:n]
	c.planRound(now, plans)

	// Round barrier passed: everything below is serial and deterministic.
	conflicts := c.arbiter.resolve(c.members, plans)
	planned, arbitrated := 0, 0
	for _, pt := range plans {
		planned += len(pt.Actions())
	}
	for _, cf := range conflicts {
		arbitrated += len(cf.Losers)
	}
	remote := c.arbitrateExternal(now, plans)
	for i := range c.members {
		c.members[i].loop.ExecutePlanned(plans[i])
		plans[i] = nil
	}
	c.metrics.Rounds++
	c.metrics.Planned += planned
	c.metrics.Arbitrated += arbitrated + remote
	c.metrics.Conflicts += len(conflicts)
	c.metrics.Remote += remote

	if c.bus != nil {
		envs := make([]bus.Envelope, 0, len(conflicts)+1)
		for _, cf := range conflicts {
			envs = append(envs, bus.Envelope{Topic: TopicConflict, Time: now, Source: c.source, Payload: cf})
		}
		envs = append(envs, bus.Envelope{Topic: TopicRound, Time: now, Source: c.source, Payload: RoundSummary{
			Round: c.metrics.Rounds, Loops: n, Planned: planned, Arbitrated: arbitrated + remote,
			Conflicts: len(conflicts), Remote: remote,
		}})
		c.bus.PublishBatch(envs)
	}
}

// arbitrateExternal runs the cross-node arbitration hook over the round's
// surviving actions and marks denied ones lost. It returns how many actions
// were denied; with no hook, no actions, or a malformed mask it denies none.
func (c *Coordinator) arbitrateExternal(now time.Duration, plans []*core.PlannedTick) int {
	if c.external == nil {
		return 0
	}
	c.digests = c.digests[:0]
	c.digRefs = c.digRefs[:0]
	for mi, pt := range plans {
		for ai, act := range pt.Actions() {
			if act.Subject == "" || pt.Arbitrated(ai) {
				continue
			}
			c.digests = append(c.digests, ActionDigest{
				Loop: c.members[mi].loop.Name, Kind: act.Kind, Subject: act.Subject,
				Priority: c.members[mi].priority, Amount: act.Amount, Confidence: act.Confidence,
			})
			c.digRefs = append(c.digRefs, digestRef{mi: mi, ai: ai})
		}
	}
	if len(c.digests) == 0 {
		return 0
	}
	deny := c.external(now, c.digests)
	if len(deny) != len(c.digests) {
		return 0 // a malformed verdict fails open: availability over suppression
	}
	denied := 0
	for i, d := range deny {
		if !d {
			continue
		}
		ref := c.digRefs[i]
		plans[ref.mi].Arbitrate(ref.ai, fmt.Sprintf(
			"lost %s to cross-node arbitration", c.digests[i].Subject))
		denied++
	}
	return denied
}

// pruneStopped honors the lifecycle at the round boundary: draining members
// complete their drain (no round is in flight here) and stopped members are
// unregistered, so a drained loop leaves the fleet within one round.
func (c *Coordinator) pruneStopped() {
	keep := c.members[:0]
	for i := range c.members {
		l := c.members[i].loop
		if l.State() == core.StateDraining {
			l.FinishDrain()
		}
		if l.State() == core.StateStopped {
			delete(c.names, l.Name)
			continue
		}
		keep = append(keep, c.members[i])
	}
	if len(keep) < len(c.members) {
		for i := len(keep); i < len(c.members); i++ {
			c.members[i] = member{}
		}
		c.members = keep
	}
}

// planRound fills plans[i] with members[i]'s PlanTick, fanning out over the
// worker pool; members whose cadence gates them out of this round get a nil
// plan. Each loop is planned by exactly one worker; the shared substrates
// the plan phases read (tsdb, knowledge, scheduler state) must be safe for
// concurrent readers, which this repository's are.
func (c *Coordinator) planRound(now time.Duration, plans []*core.PlannedTick) {
	n := len(plans)
	// Advance every member's cadence counter serially; a member is due this
	// round iff its counter wrapped to zero.
	for i := range c.members {
		plans[i] = nil
		m := &c.members[i]
		if m.n++; m.n >= m.every {
			m.n = 0
		}
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range c.members {
			if c.members[i].n == 0 {
				plans[i] = c.members[i].loop.PlanTick(now)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if c.members[i].n == 0 {
					plans[i] = c.members[i].loop.PlanTick(now)
				}
			}
		}()
	}
	wg.Wait()
}

// RunEvery schedules the fleet to tick on clock every period until stop
// returns true (stop may be nil for "run forever"). It mirrors
// core.Loop.RunEvery so converting a loop to a fleet is a drop-in change.
func (c *Coordinator) RunEvery(clock sim.Clock, period time.Duration, stop func() bool) {
	sim.TickEvery(clock, period, stop, c.Tick)
}
