package fleet

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autoloop/internal/bus"
	"autoloop/internal/core"
	"autoloop/internal/knowledge"
	"autoloop/internal/sim"
)

// staticLoop builds a loop that always plans the given actions and records
// which of them executed.
type staticLoop struct {
	loop     *core.Loop
	executed []core.Action
}

func newStaticLoop(name string, actions ...core.Action) *staticLoop {
	s := &staticLoop{}
	s.loop = core.NewLoop(name,
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			return core.Symptoms{Time: now}, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			return core.Plan{Time: now, Actions: actions}, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			s.executed = append(s.executed, a)
			return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
		}),
	)
	return s
}

func TestPriorityArbitration(t *testing.T) {
	capLoop := newStaticLoop("power-cap", core.Action{Kind: "cap", Subject: "n001", Amount: 100, Confidence: 1})
	boost := newStaticLoop("sched-boost", core.Action{Kind: "boost", Subject: "n001", Amount: 50, Confidence: 1})
	boost.loop.Audit = core.NewAuditLog(0)

	c := New(4)
	c.Add(capLoop.loop, 10)
	c.Add(boost.loop, 5)
	c.Tick(time.Minute)

	if len(capLoop.executed) != 1 || capLoop.executed[0].Kind != "cap" {
		t.Fatalf("winner executed = %v, want the cap", capLoop.executed)
	}
	if len(boost.executed) != 0 {
		t.Fatalf("loser executed = %v, want none", boost.executed)
	}
	if m := boost.loop.Metrics(); m.ArbitratedActions != 1 {
		t.Errorf("loser ArbitratedActions = %d, want 1", m.ArbitratedActions)
	}
	if m := capLoop.loop.Metrics(); m.ArbitratedActions != 0 {
		t.Errorf("winner ArbitratedActions = %d, want 0", m.ArbitratedActions)
	}
	entries := boost.loop.Audit.Filter("sched-boost", "arbitrate")
	if len(entries) != 1 || !strings.Contains(entries[0].Msg, "power-cap/cap") {
		t.Errorf("arbitrate audit = %v", entries)
	}
	if cm := c.Metrics(); cm.Rounds != 1 || cm.Planned != 2 || cm.Arbitrated != 1 || cm.Conflicts != 1 {
		t.Errorf("coordinator metrics = %+v", cm)
	}
}

func TestKindRankBeatsLoopPriority(t *testing.T) {
	capLoop := newStaticLoop("power-cap", core.Action{Kind: "cap", Subject: "n001", Amount: 100})
	boost := newStaticLoop("sched-boost", core.Action{Kind: "boost", Subject: "n001", Amount: 50})

	c := New(2)
	c.Arbiter().RankKind("cap", 1)
	c.Add(boost.loop, 100) // higher loop priority, but "boost" is unranked
	c.Add(capLoop.loop, 1)
	c.Tick(time.Minute)

	if len(capLoop.executed) != 1 || len(boost.executed) != 0 {
		t.Fatalf("cap executed %d, boost executed %d; cap's kind rank must beat boost's priority",
			len(capLoop.executed), len(boost.executed))
	}
}

func TestSameKindDoesNotConflict(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "checkpoint", Subject: "job7"})
	b := newStaticLoop("b", core.Action{Kind: "checkpoint", Subject: "job7"})
	c := New(2)
	c.Add(a.loop, 1)
	c.Add(b.loop, 2)
	c.Tick(time.Minute)
	if len(a.executed) != 1 || len(b.executed) != 1 {
		t.Fatalf("same-kind actions must both execute: a=%d b=%d", len(a.executed), len(b.executed))
	}
	if cm := c.Metrics(); cm.Conflicts != 0 || cm.Arbitrated != 0 {
		t.Errorf("metrics = %+v, want no conflicts", cm)
	}
}

func TestDifferentSubjectsDoNotConflict(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "cap", Subject: "n001"})
	b := newStaticLoop("b", core.Action{Kind: "boost", Subject: "n002"})
	c := New(2)
	c.Add(a.loop, 1)
	c.Add(b.loop, 2)
	c.Tick(time.Minute)
	if len(a.executed) != 1 || len(b.executed) != 1 {
		t.Fatalf("disjoint subjects must both execute: a=%d b=%d", len(a.executed), len(b.executed))
	}
}

func TestIntraLoopActionsNeverArbitrated(t *testing.T) {
	a := newStaticLoop("a",
		core.Action{Kind: "raise", Subject: "plant"},
		core.Action{Kind: "lower", Subject: "plant"})
	c := New(2)
	c.Add(a.loop, 1)
	c.Tick(time.Minute)
	if len(a.executed) != 2 {
		t.Fatalf("a loop's own contradictions are its own business: executed %d, want 2", len(a.executed))
	}
}

func TestArbitratedEventOnBus(t *testing.T) {
	b := bus.New()
	var arbitrated, conflicts, rounds int
	b.Subscribe("loop.sched-boost.arbitrated", func(bus.Envelope) { arbitrated++ })
	b.Subscribe(TopicConflict, func(e bus.Envelope) {
		conflicts++
		rec, ok := e.Payload.(ConflictRecord)
		if !ok || rec.Winner != "power-cap/cap" || len(rec.Losers) != 1 || rec.Losers[0] != "sched-boost/boost" {
			t.Errorf("conflict payload = %#v", e.Payload)
		}
	})
	b.Subscribe(TopicRound, func(e bus.Envelope) {
		rounds++
		sum, ok := e.Payload.(RoundSummary)
		if !ok || sum.Loops != 2 || sum.Planned != 2 || sum.Arbitrated != 1 || sum.Conflicts != 1 {
			t.Errorf("round payload = %#v", e.Payload)
		}
	})

	capLoop := newStaticLoop("power-cap", core.Action{Kind: "cap", Subject: "n001"})
	boost := newStaticLoop("sched-boost", core.Action{Kind: "boost", Subject: "n001"})
	capLoop.loop.Bus = b
	boost.loop.Bus = b
	c := New(2).PublishTo(b, "fleet-test")
	c.Add(capLoop.loop, 10)
	c.Add(boost.loop, 5)
	c.Tick(time.Minute)

	if arbitrated != 1 || conflicts != 1 || rounds != 1 {
		t.Errorf("arbitrated=%d conflicts=%d rounds=%d, want 1 each", arbitrated, conflicts, rounds)
	}
}

func TestDisabledLoopSkipsRound(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "cap", Subject: "n001"})
	a.loop.SetEnabled(false)
	b := newStaticLoop("b", core.Action{Kind: "boost", Subject: "n001"})
	c := New(2)
	c.Add(a.loop, 10)
	c.Add(b.loop, 1)
	c.Tick(time.Minute)
	if len(a.executed) != 0 || len(b.executed) != 1 {
		t.Fatalf("disabled loop must not contest: a=%d b=%d", len(a.executed), len(b.executed))
	}
}

func TestRunEvery(t *testing.T) {
	engine := sim.NewEngine(1)
	a := newStaticLoop("a", core.Action{Kind: "x", Subject: "s"})
	c := New(1)
	c.Add(a.loop, 0)
	c.RunEvery(sim.VirtualClock{Engine: engine}, time.Minute, func() bool { return engine.Now() >= 5*time.Minute })
	engine.Run()
	if got := c.Metrics().Rounds; got != 4 { // at 1,2,3,4 min (stop at >= 5)
		t.Fatalf("rounds = %d, want 4", got)
	}
}

// fleetScript runs a deterministic multi-loop scenario with the given worker
// count and returns a transcript: every audit entry, every bus envelope
// topic, every loop's metrics, and the shared knowledge base's state.
func fleetScript(t *testing.T, workers int) string {
	t.Helper()
	kb := knowledge.NewBase()
	b := bus.New()
	audit := core.NewAuditLog(1 << 16)
	var mu sync.Mutex
	var topics []string
	b.Subscribe("*", func(e bus.Envelope) {
		mu.Lock()
		topics = append(topics, e.Topic)
		mu.Unlock()
	})

	c := New(workers).PublishTo(b, "script")
	c.Arbiter().RankKind("cap", 1)
	const loops = 24
	for i := 0; i < loops; i++ {
		i := i
		name := fmt.Sprintf("loop%02d", i)
		kind := "boost"
		if i%3 == 0 {
			kind = "cap"
		}
		subject := fmt.Sprintf("n%03d", i%8) // 3 loops per subject: guaranteed conflicts
		l := core.NewLoop(name,
			core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
				// Concurrent reads of the shared knowledge base.
				_ = kb.Correction(name)
				_, _ = kb.TypicalRuntime(name)
				return core.Observation{Time: now}, nil
			}),
			core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
				return core.Symptoms{Time: now, Findings: []core.Finding{
					{Kind: "load", Subject: subject, Value: float64(i), Confidence: 1},
				}}, nil
			}),
			core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
				return core.Plan{Time: now, Actions: []core.Action{
					{Kind: kind, Subject: subject, Amount: float64(i), Confidence: 1},
				}}, nil
			}),
			core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
				// Serial execute halves write the shared knowledge base.
				kb.ResolveCorrection(name, 100, 100+float64(i))
				kb.SetFact(name+".last", a.Amount)
				return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
			}),
		)
		l.Audit = audit
		l.Bus = b
		l.K = kb
		c.Add(l, i%5)
	}
	for round := 1; round <= 5; round++ {
		c.Tick(time.Duration(round) * time.Minute)
	}

	var sb strings.Builder
	sb.WriteString(audit.Dump())
	sb.WriteString(strings.Join(topics, "\n"))
	fmt.Fprintf(&sb, "\nmetrics=%+v\n", c.Metrics())
	fmt.Fprintf(&sb, "plans=%d\n", len(kb.Plans()))
	return sb.String()
}

// TestRoundDeterminism is the tentpole's core promise: the same scenario
// produces a byte-identical transcript whether planned sequentially or on a
// full worker pool.
func TestRoundDeterminism(t *testing.T) {
	sequential := fleetScript(t, 1)
	concurrent := fleetScript(t, 8)
	if sequential != concurrent {
		t.Fatalf("transcripts diverge between workers=1 and workers=8:\n--- sequential ---\n%s\n--- concurrent ---\n%s",
			sequential, concurrent)
	}
	if !strings.Contains(sequential, "arbitrate") {
		t.Fatal("scenario produced no arbitration; determinism check is vacuous")
	}
}

func TestDuplicateLoopNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate loop name")
		}
	}()
	c := New(1)
	c.Add(newStaticLoop("same").loop, 0)
	c.Add(newStaticLoop("same").loop, 0)
}
