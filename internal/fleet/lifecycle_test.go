package fleet

import (
	"testing"
	"time"

	"autoloop/internal/core"
)

func TestAddEveryGatesCadence(t *testing.T) {
	fast := newStaticLoop("fast", core.Action{Kind: "a", Subject: "s1"})
	slow := newStaticLoop("slow", core.Action{Kind: "a", Subject: "s2"})
	c := New(1)
	c.Add(fast.loop, 0)
	c.AddEvery(slow.loop, 0, 3)
	for i := 1; i <= 6; i++ {
		c.Tick(time.Duration(i) * time.Minute)
	}
	if len(fast.executed) != 6 {
		t.Errorf("fast executed %d rounds, want 6", len(fast.executed))
	}
	// The slow member plans on its 3rd and 6th rounds after joining.
	if len(slow.executed) != 2 {
		t.Errorf("slow executed %d rounds, want 2", len(slow.executed))
	}
}

func TestRemoveUnregisters(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "k", Subject: "s"})
	b := newStaticLoop("b", core.Action{Kind: "k", Subject: "t"})
	c := New(1)
	c.Add(a.loop, 0)
	c.Add(b.loop, 0)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	c.Tick(time.Minute)
	if len(a.executed) != 0 || len(b.executed) != 1 {
		t.Errorf("a=%d b=%d, want removed loop silent", len(a.executed), len(b.executed))
	}
	// The name is free again.
	a2 := newStaticLoop("a", core.Action{Kind: "k", Subject: "s"})
	c.Add(a2.loop, 0)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestDrainedLoopLeavesFleetWithinOneRound(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "k", Subject: "s"})
	b := newStaticLoop("b", core.Action{Kind: "k", Subject: "t"})
	c := New(1)
	c.Add(a.loop, 0)
	c.Add(b.loop, 0)
	c.Tick(time.Minute)
	if err := a.loop.Drain(); err != nil {
		t.Fatal(err)
	}
	c.Tick(2 * time.Minute) // round boundary completes the drain and prunes
	if a.loop.State() != core.StateStopped {
		t.Errorf("drained loop state = %s, want stopped", a.loop.State())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after drain, want 1", c.Len())
	}
	if len(a.executed) != 1 || len(b.executed) != 2 {
		t.Errorf("a=%d b=%d, want drained loop to miss the second round", len(a.executed), len(b.executed))
	}
	// Its name is free for a replacement.
	c.Add(newStaticLoop("a", core.Action{Kind: "k", Subject: "s"}).loop, 0)
}

func TestPausedLoopSkipsRoundsButStays(t *testing.T) {
	a := newStaticLoop("a", core.Action{Kind: "k", Subject: "s"})
	c := New(1)
	c.Add(a.loop, 0)
	c.Tick(time.Minute)
	if err := a.loop.Pause(); err != nil {
		t.Fatal(err)
	}
	c.Tick(2 * time.Minute)
	c.Tick(3 * time.Minute)
	if err := a.loop.Resume(); err != nil {
		t.Fatal(err)
	}
	c.Tick(4 * time.Minute)
	if len(a.executed) != 2 {
		t.Errorf("executed %d rounds, want 2 (paused rounds skipped)", len(a.executed))
	}
	if c.Len() != 1 {
		t.Errorf("paused loop must stay registered, Len = %d", c.Len())
	}
}
