package fleet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"autoloop/internal/core"
)

// analyticLoop models a realistic ODA loop: its Analyze phase does genuine
// numeric work (robust statistics over a telemetry window), which is where a
// fleet's tick time concentrates and what the concurrent plan phase
// parallelizes.
func analyticLoop(i, window int) *core.Loop {
	series := make([]float64, window)
	for j := range series {
		series[j] = math.Sin(float64(i+j)/17) + float64(j%13)*0.1
	}
	return core.NewLoop(fmt.Sprintf("oda%04d", i),
		core.MonitorFunc(func(now time.Duration) (core.Observation, error) {
			return core.Observation{Time: now}, nil
		}),
		core.AnalyzerFunc(func(now time.Duration, obs core.Observation) (core.Symptoms, error) {
			// Mean, variance, and EWMA residual sweeps at several smoothing
			// horizons over the window — the multi-scale residual scan a
			// drift detector runs.
			var sum, sumSq float64
			for _, v := range series {
				sum += v
				sumSq += v * v
			}
			n := float64(len(series))
			mean := sum / n
			variance := sumSq/n - mean*mean
			resid := 0.0
			for _, alpha := range [...]float64{0.02, 0.05, 0.1, 0.2, 0.4} {
				ewma := series[0]
				for _, v := range series[1:] {
					ewma = (1-alpha)*ewma + alpha*v
					d := v - ewma
					resid += d * d
				}
			}
			sym := core.Symptoms{Time: now}
			if resid > variance { // always true for this synthetic series
				sym.Findings = append(sym.Findings, core.Finding{
					Kind: "drift", Subject: fmt.Sprintf("n%03d", i%64), Value: resid, Confidence: 1,
				})
			}
			return sym, nil
		}),
		core.PlannerFunc(func(now time.Duration, sym core.Symptoms) (core.Plan, error) {
			plan := core.Plan{Time: now}
			for _, f := range sym.Findings {
				plan.Actions = append(plan.Actions, core.Action{
					Kind: "retune", Subject: f.Subject, Amount: f.Value, Confidence: f.Confidence,
				})
			}
			return plan, nil
		}),
		core.ExecutorFunc(func(now time.Duration, a core.Action) (core.ActionResult, error) {
			return core.ActionResult{Action: a, Honored: true, Granted: a.Amount}, nil
		}),
	)
}

const benchWindow = 2048

func benchCoordinator(b *testing.B, loops, workers int) {
	c := New(workers)
	for i := 0; i < loops; i++ {
		c.Add(analyticLoop(i, benchWindow), i%4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick(time.Duration(i+1) * time.Minute)
	}
}

// BenchmarkFleetTick measures one concurrent coordinator round across fleet
// sizes; compare against BenchmarkFleetTickSequential at the same size for
// the scaling headroom the worker pool buys.
func BenchmarkFleetTick(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("loops=%d", n), func(b *testing.B) { benchCoordinator(b, n, 0) })
	}
}

// BenchmarkFleetTickSequential is the single-worker baseline: identical
// rounds, planned on one goroutine like the pre-fleet sequential ticking.
func BenchmarkFleetTickSequential(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("loops=%d", n), func(b *testing.B) { benchCoordinator(b, n, 1) })
	}
}
