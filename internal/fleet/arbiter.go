package fleet

import (
	"fmt"

	"autoloop/internal/core"
)

// ConflictRecord describes one arbitrated subject in one round: the action
// that won and the actions that lost to it. It is the payload published on
// TopicConflict.
type ConflictRecord struct {
	Subject string   `json:"subject"`
	Winner  string   `json:"winner"` // "loop/kind"
	Losers  []string `json:"losers"` // "loop/kind" each
}

// Arbiter resolves cross-loop conflicts among the actions planned in one
// round. Two actions conflict when they come from different loops, target the
// same subject, and the conflict policy says they contradict (by default,
// when their kinds differ — two loops independently planning the same kind of
// action on a subject is redundancy, not contradiction). Within a conflicting
// subject group one winner is chosen by kind rank first, then loop priority,
// then registration order; every action conflicting with the winner loses and
// is marked arbitrated on its loop.
type Arbiter struct {
	kindRank  map[string]int
	conflicts func(a, b core.Action) bool
}

// NewArbiter returns an arbiter with no kind ranks and the default conflict
// policy.
func NewArbiter() *Arbiter {
	return &Arbiter{kindRank: make(map[string]int), conflicts: DefaultConflictPolicy}
}

// DefaultConflictPolicy reports a contradiction when two same-subject actions
// from different loops carry different kinds.
func DefaultConflictPolicy(a, b core.Action) bool { return a.Kind != b.Kind }

// RankKind declares that actions of this kind dominate lower-ranked kinds on
// the same subject regardless of loop priority — e.g. ranking "cap" above
// "boost" lets a power-cap loop's cap beat a scheduler loop's boost even when
// the scheduler loop registered with higher priority. Unranked kinds rank 0;
// higher ranks win.
func (a *Arbiter) RankKind(kind string, rank int) *Arbiter {
	a.kindRank[kind] = rank
	return a
}

// SetConflictPolicy replaces the conflict predicate. The policy is consulted
// only for same-subject actions from different loops.
func (a *Arbiter) SetConflictPolicy(f func(x, y core.Action) bool) {
	if f == nil {
		panic("fleet: SetConflictPolicy with nil policy")
	}
	a.conflicts = f
}

// candidate is one planned action located in the round's plan set.
type candidate struct {
	mi, ai int // member index, action index within its plan
	act    core.Action
}

// resolve arbitrates one round: it groups the planned actions by subject,
// picks a winner per contested group, marks every conflicting loser on its
// PlannedTick, and returns the conflict records in deterministic
// (first-subject-appearance) order.
func (a *Arbiter) resolve(members []member, plans []*core.PlannedTick) []ConflictRecord {
	var order []string
	bySubject := make(map[string][]candidate)
	multiLoop := make(map[string]bool)
	for mi, pt := range plans {
		for ai, act := range pt.Actions() {
			if act.Subject == "" {
				continue
			}
			group := bySubject[act.Subject]
			if group == nil {
				order = append(order, act.Subject)
			} else if group[0].mi != mi {
				multiLoop[act.Subject] = true
			}
			bySubject[act.Subject] = append(group, candidate{mi: mi, ai: ai, act: act})
		}
	}

	var records []ConflictRecord
	for _, subject := range order {
		if !multiLoop[subject] {
			continue // a loop never conflicts with itself
		}
		group := bySubject[subject]
		win := group[0]
		for _, cand := range group[1:] {
			if a.beats(members, cand, win) {
				win = cand
			}
		}
		var losers []string
		for _, cand := range group {
			if cand.mi == win.mi || !a.conflicts(cand.act, win.act) {
				continue
			}
			loserLoop := members[cand.mi].loop
			winnerLoop := members[win.mi].loop
			plans[cand.mi].Arbitrate(cand.ai, fmt.Sprintf(
				"lost %s to %s/%s (kind rank %d vs %d, priority %d vs %d)",
				subject, winnerLoop.Name, win.act.Kind,
				a.kindRank[cand.act.Kind], a.kindRank[win.act.Kind],
				members[cand.mi].priority, members[win.mi].priority))
			losers = append(losers, loserLoop.Name+"/"+cand.act.Kind)
		}
		if len(losers) > 0 {
			records = append(records, ConflictRecord{
				Subject: subject,
				Winner:  members[win.mi].loop.Name + "/" + win.act.Kind,
				Losers:  losers,
			})
		}
	}
	return records
}

// beats reports whether candidate x wins over the current winner y: higher
// kind rank first, then higher loop priority; ties keep y (earlier
// registration, then earlier plan position, wins).
func (a *Arbiter) beats(members []member, x, y candidate) bool {
	rx, ry := a.kindRank[x.act.Kind], a.kindRank[y.act.Kind]
	if rx != ry {
		return rx > ry
	}
	return members[x.mi].priority > members[y.mi].priority
}
