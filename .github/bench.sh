#!/usr/bin/env bash
# Runs the key-benchmark smoke set used by the CI perf-regression gate.
# Usage: bench.sh [tree-dir]   (defaults to the current tree)
# BENCH_COUNT overrides the per-benchmark repetition count (default 6; the
# gate compares medians, so odd noise in one run does not flip the verdict).
# Fixed -benchtime=Nx iteration counts keep base and head runs comparable.
set -euo pipefail
dir="${1:-.}"
count="${BENCH_COUNT:-6}"
cd "$dir"
go test -run='^$' -bench='^BenchmarkBusDispatch$' -benchtime=1000x -count="$count" ./internal/bus
go test -run='^$' -bench='^BenchmarkTelemetryIngest$' -benchtime=100x -count="$count" ./internal/tsdb
go test -run='^$' -bench='^BenchmarkQueryMatcher$' -benchtime=50x -count="$count" ./internal/tsdb
go test -run='^$' -bench='^BenchmarkShardedAppend$' -benchtime=100000x -count="$count" ./internal/tsdb
go test -run='^$' -bench='^BenchmarkWindowQuery$' -benchtime=2000x -count="$count" ./internal/tsdb
# Detector stepping is every loop's per-tick inner loop. Only the streaming
# rows run here (benchgate gates every shared benchmark name, so the noisy
# O(W log W) naive baselines are kept out of CI); run the full
# BenchmarkDetectorStep locally for the incremental-vs-naive comparison.
go test -run='^$' -bench='^BenchmarkDetectorStep$/.*/.*/^(incremental|quickselect)$' -benchtime=5000x -count="$count" ./internal/analytics
# Only the 1000-loop shape: the small sub-benchmarks are too short to gate
# on a shared CI box without false positives.
go test -run='^$' -bench='^BenchmarkFleetTick$/^loops=1000$' -benchtime=5x -count="$count" ./internal/fleet
# Control plane: one control.v1 request/reply round trip through the bus,
# and the lifecycle-state fast paths every tick pays (both must stay at
# 0 allocs/op — TestLifecycleFastPathAllocs gates that exactly).
go test -run='^$' -bench='^BenchmarkControlDispatch$' -benchtime=2000x -count="$count" ./internal/control
go test -run='^$' -bench='^BenchmarkLifecycleCheck$' -benchtime=200000x -count="$count" ./internal/core
# Durability hot paths: the journal append under group-commit batching and
# with fsync disabled (TestWALAppendAllocs gates 0 allocs/record exactly),
# plus full log replay throughput. sync=always is excluded — raw fsync
# latency on a shared CI box is too noisy to gate; run it locally.
go test -run='^$' -bench='^BenchmarkWALAppend$/^sync=(none|batch)$' -benchtime=20000x -count="$count" ./internal/wal
go test -run='^$' -bench='^BenchmarkRecovery$' -benchtime=2x -count="$count" ./internal/wal
# HTTP gateway: one /v1/query through the full handler (auth, decode,
# singleflight, zero-copy QueryVisit encode), and one bus publish fanned
# out to 1000 connected SSE subscribers.
go test -run='^$' -bench='^BenchmarkGatewayQuery$' -benchtime=500x -count="$count" ./internal/gateway
go test -run='^$' -bench='^BenchmarkSSEFanout$/^clients=1000$' -benchtime=2000x -count="$count" ./internal/gateway
