#!/usr/bin/env bash
# Runs the key-benchmark smoke set used by the CI perf-regression gate.
# Usage: bench.sh [tree-dir]   (defaults to the current tree)
# BENCH_COUNT overrides the per-benchmark repetition count (default 6; the
# gate compares medians, so odd noise in one run does not flip the verdict).
# Fixed -benchtime=Nx iteration counts keep base and head runs comparable.
set -euo pipefail
dir="${1:-.}"
count="${BENCH_COUNT:-6}"
cd "$dir"

# run <bench-regex> <benchtime> <package>: one gated benchmark invocation.
# A pattern that matches nothing fails loudly here — a silently-skipped
# benchmark would make the regression gate vacuously green after a rename.
run() {
  local pattern="$1" benchtime="$2" pkg="$3" out
  # A package that does not exist in this tree (a benchmark added by the PR
  # under test) is skipped: the gate only compares benchmark names present
  # in both runs. Renames inside an existing package still fail loudly.
  if [ ! -d "${pkg#./}" ]; then
    echo "bench.sh: skipping $pkg (not present in this tree)" >&2
    return 0
  fi
  out="$(go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -count="$count" "$pkg")"
  printf '%s\n' "$out"
  if ! printf '%s\n' "$out" | grep -q '^Benchmark'; then
    echo "bench.sh: -bench pattern '$pattern' matched no benchmarks in $pkg" >&2
    exit 1
  fi
}

run '^BenchmarkBusDispatch$' 1000x ./internal/bus
run '^BenchmarkTelemetryIngest$' 100x ./internal/tsdb
run '^BenchmarkQueryMatcher$' 50x ./internal/tsdb
run '^BenchmarkShardedAppend$' 100000x ./internal/tsdb
run '^BenchmarkWindowQuery$' 2000x ./internal/tsdb
# Detector stepping is every loop's per-tick inner loop. Only the streaming
# rows run here (benchgate gates every shared benchmark name, so the noisy
# O(W log W) naive baselines are kept out of CI); run the full
# BenchmarkDetectorStep locally for the incremental-vs-naive comparison.
run '^BenchmarkDetectorStep$/.*/.*/^(incremental|quickselect)$' 5000x ./internal/analytics
# Only the 1000-loop shape: the small sub-benchmarks are too short to gate
# on a shared CI box without false positives.
run '^BenchmarkFleetTick$/^loops=1000$' 5x ./internal/fleet
# Control plane: one control.v1 request/reply round trip through the bus,
# and the lifecycle-state fast paths every tick pays (both must stay at
# 0 allocs/op — TestLifecycleFastPathAllocs gates that exactly).
run '^BenchmarkControlDispatch$' 2000x ./internal/control
run '^BenchmarkLifecycleCheck$' 200000x ./internal/core
# Durability hot paths: the journal append under group-commit batching and
# with fsync disabled (TestWALAppendAllocs gates 0 allocs/record exactly),
# plus full log replay throughput. sync=always is excluded — raw fsync
# latency on a shared CI box is too noisy to gate; run it locally.
run '^BenchmarkWALAppend$/^sync=(none|batch)$' 20000x ./internal/wal
run '^BenchmarkRecovery$' 2x ./internal/wal
# HTTP gateway: one /v1/query through the full handler (auth, decode,
# singleflight, zero-copy QueryVisit encode), and one bus publish fanned
# out to 1000 connected SSE subscribers.
run '^BenchmarkGatewayQuery$' 500x ./internal/gateway
run '^BenchmarkSSEFanout$/^clients=1000$' 2000x ./internal/gateway
# Cluster plane: the consistent-hash placement lookup, one cross-node
# arbitration digest, a full in-process scatter-gather, and the same gather
# over real loopback TCP bridges (the per-request cost of a multi-node
# list/query). RingMembership is excluded — a full point resort per op is
# rare (joins/failovers only) and too coarse to gate.
run '^BenchmarkRingOwner$' 100000x ./internal/cluster
run '^BenchmarkArbiterDecide$' 20000x ./internal/cluster
run '^BenchmarkScatterGather$/^workers=4$' 500x ./internal/cluster
run '^BenchmarkClusterFanoutTCP$' 200x ./internal/cluster
# Resilience plumbing: the backoff schedule draw every redial pays, and the
# disarmed chaos-conn passthrough — the wrapper must stay ~free when no
# faults are armed (TestChaosConnDisarmedAllocs gates 0 allocs/op exactly).
# The armed sub-benchmark is excluded: injected sleeps make it a clock
# measurement, not a regression signal.
run '^BenchmarkBackoffSchedule$' 200000x ./internal/chaos
run '^BenchmarkChaosConn$/^disarmed$' 50000x ./internal/chaos
# Scenario engine: the chaos-diverse midsize scenario end to end, and the
# 10240-node stress scenario — one full assemble-run-score per iteration
# (~3M telemetry points through the sharded TSDB with the fleet live); the
# scale gate the 10k-node claim rests on. Both run with a reduced count:
# a full scenario per iteration is long enough that medians stay stable.
BENCH_COUNT_SAVED="$count"; count=3
run '^BenchmarkScenarioMidsize$' 1x ./internal/scenario
run '^BenchmarkScenarioStress10k$' 1x ./internal/scenario
count="$BENCH_COUNT_SAVED"
