// Benchmarks: one per reproduced table/figure (DESIGN.md §3). Each benchmark
// executes the corresponding experiment end to end on its quick scenario, so
// `go test -bench=.` regenerates every row of EXPERIMENTS.md; per-op time is
// the cost of one full scenario simulation.
package autoloop_test

import (
	"testing"

	"autoloop"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := autoloop.RunExperiment(id, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Fig. 1 — holistic monitoring and ODA across the four domains.
func BenchmarkExpF1Holistic(b *testing.B) { benchExperiment(b, "EXP-F1") }

// Fig. 2 — pattern scalability, stability, robustness.
func BenchmarkExpF2Scalability(b *testing.B) { benchExperiment(b, "EXP-F2a") }
func BenchmarkExpF2Stability(b *testing.B)   { benchExperiment(b, "EXP-F2b") }
func BenchmarkExpF2Robustness(b *testing.B)  { benchExperiment(b, "EXP-F2c") }

// Fig. 3 — the Scheduler use case and its trust metrics.
func BenchmarkExpF3Scheduler(b *testing.B) { benchExperiment(b, "EXP-F3") }
func BenchmarkExpF3bTrust(b *testing.B)    { benchExperiment(b, "EXP-F3b") }

// §III — the remaining four use cases.
func BenchmarkExpU1Maintenance(b *testing.B) { benchExperiment(b, "EXP-U1") }
func BenchmarkExpU2IOQoS(b *testing.B)       { benchExperiment(b, "EXP-U2") }
func BenchmarkExpU3OST(b *testing.B)         { benchExperiment(b, "EXP-U3") }
func BenchmarkExpU4Misconfig(b *testing.B)   { benchExperiment(b, "EXP-U4") }

// §III–IV ablations.
func BenchmarkExpA1Knowledge(b *testing.B)  { benchExperiment(b, "EXP-A1") }
func BenchmarkExpA2Confidence(b *testing.B) { benchExperiment(b, "EXP-A2") }
func BenchmarkExpA3HumanLoop(b *testing.B)  { benchExperiment(b, "EXP-A3") }
func BenchmarkExpA4Continual(b *testing.B)  { benchExperiment(b, "EXP-A4") }

// §IV extension: the power/energy control loop.
func BenchmarkExpX1Power(b *testing.B) { benchExperiment(b, "EXP-X1") }

// Fleet extension: concurrent loops with cross-loop conflict arbitration.
func BenchmarkExpC1Fleet(b *testing.B) { benchExperiment(b, "EXP-C1") }
