module autoloop

go 1.24
